// Tests for the event-driven transport core: the epoll reactor, the elastic
// task pool, the keep-alive connection pool, and the pipelining mux channel.
//
// The reactor under test runs a tiny echo protocol: request type kEchoReq
// carries an 8-byte request id followed by arbitrary bytes; the handler
// replies kEchoRep with the identical payload (so the id demultiplexes),
// optionally sleeping first when the payload says so — enough to script
// out-of-order completions and deadline races without a full server.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <random>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "common/metrics.hpp"
#include "net/fault.hpp"
#include "net/pool.hpp"
#include "net/reactor.hpp"
#include "net/socket.hpp"
#include "net/task_pool.hpp"
#include "net/transport.hpp"

namespace ns::net {
namespace {

constexpr std::uint16_t kEchoReq = 41;
constexpr std::uint16_t kEchoRep = 42;

serial::Bytes make_payload(std::uint64_t request_id, double sleep_s = 0.0,
                           std::size_t extra = 0) {
  serial::Bytes payload(8 + 8 + extra);
  for (std::size_t i = 0; i < 8; ++i) {
    payload[i] = static_cast<std::uint8_t>(request_id >> (8 * i));
  }
  // Sleep request rides as milliseconds in the next 8 bytes.
  const auto ms = static_cast<std::uint64_t>(sleep_s * 1000.0);
  for (std::size_t i = 0; i < 8; ++i) {
    payload[8 + i] = static_cast<std::uint8_t>(ms >> (8 * i));
  }
  for (std::size_t i = 0; i < extra; ++i) {
    payload[16 + i] = static_cast<std::uint8_t>(request_id + i);
  }
  return payload;
}

std::uint64_t payload_id(const serial::Bytes& payload) {
  std::uint64_t id = 0;
  for (std::size_t i = 0; i < 8 && i < payload.size(); ++i) {
    id |= static_cast<std::uint64_t>(payload[i]) << (8 * i);
  }
  return id;
}

double payload_sleep_s(const serial::Bytes& payload) {
  if (payload.size() < 16) return 0.0;
  std::uint64_t ms = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    ms |= static_cast<std::uint64_t>(payload[8 + i]) << (8 * i);
  }
  return static_cast<double>(ms) / 1000.0;
}

/// Poll until the reactor reports exactly `want` live connections (closes
/// land on the loop thread, asynchronously to the peer observing EOF).
bool eventually_conn_count(Reactor& reactor, std::size_t want, double timeout_s = 3.0) {
  const Deadline deadline(timeout_s);
  while (!deadline.expired()) {
    if (reactor.connection_count() == want) return true;
    sleep_seconds(0.005);
  }
  return reactor.connection_count() == want;
}

/// Reactor wrapper serving the echo protocol on an ephemeral port.
class EchoServer {
 public:
  explicit EchoServer(ReactorConfig config = {}) {
    auto listener = TcpListener::bind({"127.0.0.1", 0});
    EXPECT_TRUE(listener.ok());
    endpoint_ = listener.value().endpoint();
    auto status = reactor_.start(
        std::move(listener).value(),
        [this](const ReactorConnPtr& conn, Message&& msg) {
          if (msg.type != kEchoReq) return false;
          frames_.fetch_add(1);
          const double sleep_s = payload_sleep_s(msg.payload);
          if (sleep_s > 0.0) sleep_seconds(sleep_s);
          return conn->send(kEchoRep, msg.payload).ok();
        },
        config);
    EXPECT_TRUE(status.ok());
  }

  ~EchoServer() {
    reactor_.stop();
    ConnectionPool::instance().clear();
    FaultInjector::instance().disarm_all();
  }

  const Endpoint& endpoint() const { return endpoint_; }
  Reactor& reactor() { return reactor_; }
  std::uint64_t frames() const { return frames_.load(); }

 private:
  Endpoint endpoint_;
  Reactor reactor_;
  std::atomic<std::uint64_t> frames_{0};
};

// ---- reactor ----

TEST(ReactorTest, EchoRoundTrip) {
  EchoServer server;
  auto conn = TcpConnection::connect(server.endpoint());
  ASSERT_TRUE(conn.ok());
  const auto payload = make_payload(7, 0.0, 32);
  ASSERT_TRUE(send_message(conn.value(), kEchoReq, payload).ok());
  auto reply = recv_message(conn.value(), 5.0);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.value().type, kEchoRep);
  EXPECT_EQ(reply.value().payload, payload);
}

// Many frames glued into the stream before any reply is read: the reactor
// must decode them all (multiple frames per read buffer) and the handlers
// must reply on the shared connection without corrupting the framing.
TEST(ReactorTest, PipelinedFramesOnOneConnection) {
  EchoServer server;
  auto conn = TcpConnection::connect(server.endpoint());
  ASSERT_TRUE(conn.ok());

  constexpr int kFrames = 32;
  for (int i = 0; i < kFrames; ++i) {
    ASSERT_TRUE(
        send_message(conn.value(), kEchoReq, make_payload(static_cast<std::uint64_t>(i + 1)))
            .ok());
  }
  // Replies may complete out of order (concurrent handlers); collect ids.
  std::vector<bool> seen(kFrames + 1, false);
  for (int i = 0; i < kFrames; ++i) {
    auto reply = recv_message(conn.value(), 5.0);
    ASSERT_TRUE(reply.ok());
    ASSERT_EQ(reply.value().type, kEchoRep);
    const std::uint64_t id = payload_id(reply.value().payload);
    ASSERT_GE(id, 1u);
    ASSERT_LE(id, static_cast<std::uint64_t>(kFrames));
    EXPECT_FALSE(seen[id]) << "duplicate reply for id " << id;
    seen[id] = true;
  }
  EXPECT_EQ(server.frames(), static_cast<std::uint64_t>(kFrames));
}

// A slow handler must not stall other connections (the reactor loop never
// blocks on a handler): a fast request on a second connection completes
// while the slow one is still sleeping.
TEST(ReactorTest, SlowHandlerDoesNotBlockOtherConnections) {
  EchoServer server;
  auto slow = TcpConnection::connect(server.endpoint());
  auto fast = TcpConnection::connect(server.endpoint());
  ASSERT_TRUE(slow.ok());
  ASSERT_TRUE(fast.ok());

  ASSERT_TRUE(send_message(slow.value(), kEchoReq, make_payload(1, /*sleep_s=*/0.8)).ok());
  const Stopwatch watch;
  ASSERT_TRUE(send_message(fast.value(), kEchoReq, make_payload(2)).ok());
  auto reply = recv_message(fast.value(), 5.0);
  ASSERT_TRUE(reply.ok());
  EXPECT_LT(watch.elapsed(), 0.5) << "fast request waited on the slow handler";
  auto slow_reply = recv_message(slow.value(), 5.0);
  ASSERT_TRUE(slow_reply.ok());
}

// The idle sweep closes keep-alive connections that go quiet; an active
// in-flight handler shields its connection from the sweep.
TEST(ReactorTest, IdleConnectionsAreSweptClosed) {
  ReactorConfig config;
  config.idle_timeout_s = 0.2;
  EchoServer server(config);
  auto conn = TcpConnection::connect(server.endpoint());
  ASSERT_TRUE(conn.ok());
  // Prove liveness first, then go idle.
  ASSERT_TRUE(send_message(conn.value(), kEchoReq, make_payload(1)).ok());
  ASSERT_TRUE(recv_message(conn.value(), 5.0).ok());

  // Sweep cadence is 1 s; within ~2 s the peer must have closed us.
  std::uint8_t byte = 0;
  auto status = conn.value().recv_all(&byte, 1, 2.5);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, ErrorCode::kConnectionClosed);
}

// stop_accepting() releases the port while established connections keep
// serving — the injected-crash semantics servers rely on.
TEST(ReactorTest, StopAcceptingReleasesPortButServesExisting) {
  EchoServer server;
  auto conn = TcpConnection::connect(server.endpoint());
  ASSERT_TRUE(conn.ok());

  server.reactor().stop_accepting();
  // The loop thread closes the listener on its next wakeup; new dials must
  // start failing (give the async close a moment, then a short dial budget).
  const Deadline deadline(2.0);
  bool refused = false;
  while (!deadline.expired()) {
    auto fresh = TcpConnection::connect_raw(server.endpoint(), 0.05);
    if (!fresh.ok()) {
      refused = true;
      break;
    }
    sleep_seconds(0.02);
  }
  EXPECT_TRUE(refused) << "listener still accepting after stop_accepting()";

  // The established connection still serves.
  ASSERT_TRUE(send_message(conn.value(), kEchoReq, make_payload(9)).ok());
  auto reply = recv_message(conn.value(), 5.0);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(payload_id(reply.value().payload), 9u);
}

// ---- read-path fuzz: hostile bytes must close the peer, never the loop ----

// Pure noise on the wire: the reactor must fail header decode (bad magic),
// drop the connection, and keep serving other peers untouched.
TEST(ReactorTest, GarbageBytesCloseConnectionReactorSurvives) {
  EchoServer server;
  std::mt19937_64 rng(0xdecafbad);
  for (int round = 0; round < 8; ++round) {
    auto evil = TcpConnection::connect(server.endpoint());
    ASSERT_TRUE(evil.ok());
    serial::Bytes noise(1024 + rng() % 4096);
    for (auto& b : noise) b = static_cast<std::uint8_t>(rng());
    // The send may fail midway once the reactor slams the door; either way
    // the peer must observe a close, not a hang.
    (void)evil.value().send_all(noise.data(), noise.size());
    std::uint8_t byte = 0;
    {
    auto status = evil.value().recv_all(&byte, 1, 2.0);
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.error().code, ErrorCode::kConnectionClosed);
  }
  }
  // A well-formed peer is unaffected.
  auto good = TcpConnection::connect(server.endpoint());
  ASSERT_TRUE(good.ok());
  ASSERT_TRUE(send_message(good.value(), kEchoReq, make_payload(11)).ok());
  auto reply = recv_message(good.value(), 5.0);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(payload_id(reply.value().payload), 11u);
}

// A syntactically valid header whose payload fails the CRC: the frame must
// be rejected at check_payload, the connection dropped, and a pipelined
// valid frame sitting behind the corrupt one must NOT be dispatched — a
// misframed stream cannot be trusted for anything that follows.
TEST(ReactorTest, CorruptPayloadDropsConnectionBeforeLaterFrames) {
  EchoServer server;
  auto evil = TcpConnection::connect(server.endpoint());
  ASSERT_TRUE(evil.ok());

  serial::Bytes corrupt = serial::build_frame(kEchoReq, make_payload(21));
  corrupt.back() ^= 0xff;  // payload no longer matches the header CRC
  const serial::Bytes valid = serial::build_frame(kEchoReq, make_payload(22));
  serial::Bytes wire = corrupt;
  wire.insert(wire.end(), valid.begin(), valid.end());
  (void)evil.value().send_all(wire.data(), wire.size());

  std::uint8_t byte = 0;
  {
    auto status = evil.value().recv_all(&byte, 1, 2.0);
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.error().code, ErrorCode::kConnectionClosed);
  }
  // Give any (wrong) dispatch of frame 22 a beat to land, then assert the
  // reactor stopped at the corruption: neither frame ran the handler.
  sleep_seconds(0.1);
  EXPECT_EQ(server.frames(), 0u) << "frames after a CRC failure were dispatched";
}

// A truncated header followed by an abrupt close (the classic port-scanner
// footprint) must not wedge the loop or leak the connection slot.
TEST(ReactorTest, TruncatedHeaderThenCloseIsHarmless) {
  EchoServer server;
  for (int round = 0; round < 4; ++round) {
    auto evil = TcpConnection::connect(server.endpoint());
    ASSERT_TRUE(evil.ok());
    const serial::Bytes frame = serial::build_frame(kEchoReq, make_payload(31));
    ASSERT_TRUE(evil.value().send_all(frame.data(), serial::kHeaderSize / 2).ok());
    evil.value().close();
  }
  auto good = TcpConnection::connect(server.endpoint());
  ASSERT_TRUE(good.ok());
  ASSERT_TRUE(send_message(good.value(), kEchoReq, make_payload(32)).ok());
  auto reply = recv_message(good.value(), 5.0);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(payload_id(reply.value().payload), 32u);
  EXPECT_TRUE(eventually_conn_count(server.reactor(), 1));
}

// ---- task pool ----

// The pool grows past its core threads when handlers block: N blocking
// tasks with N > core must all run concurrently.
TEST(TaskPoolTest, GrowsBeyondCoreThreadsUnderBlockingLoad) {
  TaskPool pool;
  pool.start(/*core_threads=*/2, /*max_threads=*/16);

  constexpr int kTasks = 6;
  std::mutex mu;
  std::condition_variable cv;
  int started = 0;
  bool release = false;
  for (int i = 0; i < kTasks; ++i) {
    ASSERT_TRUE(pool.submit([&] {
      std::unique_lock<std::mutex> lock(mu);
      ++started;
      cv.notify_all();
      cv.wait(lock, [&] { return release; });
    }));
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    const bool all_started = cv.wait_for(lock, std::chrono::seconds(5),
                                         [&] { return started == kTasks; });
    EXPECT_TRUE(all_started) << "pool did not grow past core threads; started=" << started;
    release = true;
    cv.notify_all();
  }
  pool.stop();
  EXPECT_GE(pool.thread_count(), 0u);  // stop() joined everything without deadlock
}

// ---- connection pool (leases) ----

TEST(PoolTest, LeaseReusesReleasedConnection) {
  EchoServer server;
  auto& pool = ConnectionPool::instance();
  pool.clear();

  auto first = pool.lease(server.endpoint(), 2.0);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first.value().reused());
  ASSERT_TRUE(send_message(first.value().conn(), kEchoReq, make_payload(1)).ok());
  ASSERT_TRUE(recv_message(first.value().conn(), 5.0).ok());
  first.value().release();
  EXPECT_EQ(pool.idle_count(), 1u);

  auto second = pool.lease(server.endpoint(), 2.0);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.value().reused()) << "warm connection not reused";
  ASSERT_TRUE(send_message(second.value().conn(), kEchoReq, make_payload(2)).ok());
  auto reply = recv_message(second.value().conn(), 5.0);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(payload_id(reply.value().payload), 2u);
}

// Satellite regression: a reply racing a deadline expiry leaves half a frame
// (or a whole late frame) in flight. The timed-out lease must be discarded —
// never released — and the next round trip must get its own reply, not the
// stale one.
TEST(PoolTest, TimedOutLeaseIsDiscardedNotReused) {
  EchoServer server;
  auto& pool = ConnectionPool::instance();
  pool.clear();
  const std::uint64_t discards_before = metrics::counter("net.pool.discarded_total").value();

  // Handler sleeps 300 ms; the caller gives up after 50 ms.
  auto late = pool_round_trip(server.endpoint(), kEchoReq, make_payload(1, /*sleep_s=*/0.3),
                              /*timeout_s=*/0.05, /*dial_timeout_s=*/2.0);
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.error().code, ErrorCode::kTimeout);
  EXPECT_EQ(pool.idle_count(), 0u) << "timed-out connection leaked back into the pool";
  EXPECT_GT(metrics::counter("net.pool.discarded_total").value(), discards_before);

  // The late reply (id 1) is still in flight toward the discarded socket.
  // A fresh round trip must dial clean and receive its own id.
  auto fresh = pool_round_trip(server.endpoint(), kEchoReq, make_payload(2),
                               /*timeout_s=*/5.0, /*dial_timeout_s=*/2.0);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(payload_id(fresh.value().payload), 2u) << "stale reply leaked into a fresh lease";
}

// Satellite regression: poison a pooled connection mid-frame via fault
// injection (stall = half a frame then silence). The lease must be
// discarded, and traffic after disarm must flow on a clean connection.
TEST(PoolTest, StalledMidFrameLeaseIsDiscarded) {
  EchoServer server;
  auto& pool = ConnectionPool::instance();
  pool.clear();

  // Warm the pool with one good round trip.
  auto warm = pool_round_trip(server.endpoint(), kEchoReq, make_payload(1), 5.0, 2.0);
  ASSERT_TRUE(warm.ok());
  ASSERT_EQ(pool.idle_count(), 1u);

  // One stalled send: the request frame stops halfway, the reply never
  // comes, the caller times out, and the poisoned connection is discarded.
  FaultPlan plan = FaultPlan::single(FaultMode::kStall, 1.0);
  plan.rules[0].max_triggers = 1;
  FaultInjector::instance().arm(server.endpoint(), plan);
  auto stalled = pool_round_trip(server.endpoint(), kEchoReq, make_payload(2),
                                 /*timeout_s=*/0.2, /*dial_timeout_s=*/2.0);
  ASSERT_FALSE(stalled.ok());
  EXPECT_EQ(pool.idle_count(), 0u) << "mid-frame poisoned connection kept for reuse";
  FaultInjector::instance().disarm_all();

  auto after = pool_round_trip(server.endpoint(), kEchoReq, make_payload(3), 5.0, 2.0);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(payload_id(after.value().payload), 3u);
}

// Fault parity: an armed connect fault fires even when the pool is warm —
// the pool is a dial cache, not a way around chaos schedules.
TEST(PoolTest, ConnectFaultFiresOnWarmPool) {
  EchoServer server;
  auto& pool = ConnectionPool::instance();
  pool.clear();

  auto warm = pool_round_trip(server.endpoint(), kEchoReq, make_payload(1), 5.0, 2.0);
  ASSERT_TRUE(warm.ok());
  ASSERT_EQ(pool.idle_count(), 1u);

  FaultInjector::instance().arm(server.endpoint(),
                                FaultPlan::single(FaultMode::kConnectRefused, 1.0));
  auto refused = pool.lease(server.endpoint(), 0.2);
  EXPECT_FALSE(refused.ok()) << "warm pool bypassed an armed connect fault";
  FaultInjector::instance().disarm_all();
}

// The MSG_PEEK staleness check: a pooled connection whose peer closed it
// (server restart, idle sweep) is dropped at lease time, not handed out.
TEST(PoolTest, PeerClosedIdleConnectionIsNotHandedOut) {
  ReactorConfig config;
  config.idle_timeout_s = 0.2;  // server sweeps the idle conn out from under the pool
  EchoServer server(config);
  auto& pool = ConnectionPool::instance();
  pool.clear();

  auto warm = pool_round_trip(server.endpoint(), kEchoReq, make_payload(1), 5.0, 2.0);
  ASSERT_TRUE(warm.ok());
  ASSERT_EQ(pool.idle_count(), 1u);

  sleep_seconds(1.6);  // past the server's sweep; the cached conn is now dead

  // PoolConfig.idle_timeout_s (2.5 s) has not elapsed, so only the MSG_PEEK
  // check can save this lease from a dead socket.
  auto reply = pool_round_trip(server.endpoint(), kEchoReq, make_payload(2), 5.0, 2.0);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(payload_id(reply.value().payload), 2u);
}

// ---- mux channel (pipelining) ----

TEST(MuxTest, ConcurrentCallsDemuxByRequestId) {
  EchoServer server;
  auto& pool = ConnectionPool::instance();
  pool.clear();

  auto channel = pool.channel(server.endpoint(), 2.0);
  ASSERT_TRUE(channel.ok());

  // Out-of-order completion by construction: id 1 sleeps, id 2 does not.
  // Both share one socket; each must get exactly its own payload back.
  std::thread slow([&] {
    auto reply = channel.value()->call(kEchoReq, make_payload(1, /*sleep_s=*/0.4), kEchoRep,
                                       1, /*timeout_s=*/5.0);
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(payload_id(reply.value().payload), 1u);
  });
  sleep_seconds(0.05);  // let the slow call hit the wire first
  auto fast = channel.value()->call(kEchoReq, make_payload(2), kEchoRep, 2, 5.0);
  ASSERT_TRUE(fast.ok());
  EXPECT_EQ(payload_id(fast.value().payload), 2u);
  slow.join();

  // Both calls shared one pipelined connection.
  EXPECT_EQ(server.reactor().connection_count(), 1u);
}

TEST(MuxTest, ManyPipelinedCallsOverOneSocket) {
  EchoServer server;
  auto& pool = ConnectionPool::instance();
  pool.clear();

  constexpr int kCalls = 24;
  std::vector<std::thread> threads;
  std::atomic<int> ok_count{0};
  for (int i = 0; i < kCalls; ++i) {
    threads.emplace_back([&, i] {
      auto channel = pool.channel(server.endpoint(), 2.0);
      ASSERT_TRUE(channel.ok());
      const auto id = static_cast<std::uint64_t>(i + 1);
      auto reply = channel.value()->call(kEchoReq, make_payload(id), kEchoRep, id, 5.0);
      if (reply.ok() && payload_id(reply.value().payload) == id) ok_count.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok_count.load(), kCalls);
  EXPECT_EQ(server.reactor().connection_count(), 1u)
      << "pipelined calls dialed extra sockets";
}

// A timed-out mux call deregisters its waiter; the late reply is read and
// discarded whole, so the channel keeps serving later calls on the same
// socket (no poisoning, no eviction).
TEST(MuxTest, LateReplyAfterTimeoutIsDiscardedChannelSurvives) {
  EchoServer server;
  auto& pool = ConnectionPool::instance();
  pool.clear();

  auto channel = pool.channel(server.endpoint(), 2.0);
  ASSERT_TRUE(channel.ok());
  auto late = channel.value()->call(kEchoReq, make_payload(1, /*sleep_s=*/0.3), kEchoRep, 1,
                                    /*timeout_s=*/0.05);
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.error().code, ErrorCode::kTimeout);

  sleep_seconds(0.4);  // the late reply lands and must be dropped whole
  EXPECT_TRUE(channel.value()->healthy());
  auto after = channel.value()->call(kEchoReq, make_payload(2), kEchoRep, 2, 5.0);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(payload_id(after.value().payload), 2u);
}

// Satellite regression: connection reuse survives arm_fault mid-stream
// resets — the poisoned channel is evicted and the next call redials.
TEST(MuxTest, MidStreamResetEvictsChannelAndRedials) {
  EchoServer server;
  auto& pool = ConnectionPool::instance();
  pool.clear();
  const std::uint64_t evicted_before = metrics::counter("net.mux.evicted_total").value();
  const std::uint64_t poisoned_before = metrics::counter("net.mux.poisoned_total").value();

  auto first = pool.channel(server.endpoint(), 2.0);
  ASSERT_TRUE(first.ok());
  auto warm = first.value()->call(kEchoReq, make_payload(1), kEchoRep, 1, 5.0);
  ASSERT_TRUE(warm.ok());

  // One reset: the send tears the stream mid-frame and the channel poisons.
  FaultPlan plan = FaultPlan::single(FaultMode::kReset, 1.0);
  plan.rules[0].max_triggers = 1;
  FaultInjector::instance().arm(server.endpoint(), plan);
  auto reset = first.value()->call(kEchoReq, make_payload(2), kEchoRep, 2, 5.0);
  ASSERT_FALSE(reset.ok());
  EXPECT_TRUE(is_retryable(reset.error().code)) << reset.error().to_string();
  EXPECT_FALSE(first.value()->healthy());
  EXPECT_GT(metrics::counter("net.mux.poisoned_total").value(), poisoned_before);
  FaultInjector::instance().disarm_all();

  // Next channel() evicts the poisoned one and redials.
  auto second = pool.channel(server.endpoint(), 2.0);
  ASSERT_TRUE(second.ok());
  EXPECT_NE(second.value().get(), first.value().get());
  EXPECT_GT(metrics::counter("net.mux.evicted_total").value(), evicted_before);
  auto after = second.value()->call(kEchoReq, make_payload(3), kEchoRep, 3, 5.0);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(payload_id(after.value().payload), 3u);
}

}  // namespace
}  // namespace ns::net
