// Adaptive overload control: deadline-aware admission (EDF ordering,
// infeasible-at-admission sheds, expired-at-dequeue sheds), per-client
// fair-share quotas, CoDel-style sojourn shedding, the AIMD concurrency
// limit, and the cooperative retry_after backpressure loop. All scenarios
// use simwork under SlowdownMode::kSleep so "service time" is wall-clock
// sleep, not CPU — the tests run identically on a one-core host.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "client/client.hpp"
#include "common/clock.hpp"
#include "common/metrics.hpp"
#include "net/transport.hpp"
#include "proto/messages.hpp"
#include "testkit/cluster.hpp"

namespace ns {
namespace {

using dsl::DataObject;

// Poll `pred` until it holds or `timeout_s` lapses.
template <typename Pred>
bool eventually(Pred pred, double timeout_s = 5.0) {
  const Deadline deadline(timeout_s);
  while (!deadline.expired()) {
    if (pred()) return true;
    sleep_seconds(0.005);
  }
  return pred();
}

serial::Bytes encode_solve(std::uint64_t request_id, std::int64_t mflop,
                           double deadline_s = 0.0, std::uint64_t client_id = 0) {
  proto::SolveRequest msg;
  msg.request_id = request_id;
  msg.problem = "simwork";
  msg.args = {DataObject(mflop)};
  msg.deadline_s = deadline_s;
  msg.client_id = client_id;
  serial::Encoder enc;
  msg.encode(enc);
  return enc.take();
}

Result<proto::SolveResult> recv_solve_result(net::TcpConnection& conn, double timeout_s) {
  auto reply = net::recv_message(conn, timeout_s);
  NS_RETURN_IF_ERROR(reply);
  if (reply.value().type != static_cast<std::uint16_t>(proto::MessageType::kSolveResult)) {
    return make_error(ErrorCode::kProtocol, "expected SOLVE_RESULT");
  }
  serial::Decoder dec(reply.value().payload);
  return proto::SolveResult::decode(dec);
}

// One full-speed single-worker server with the given admission knobs; the
// rating is pinned so simwork(m) sleeps m/rating seconds exactly.
Result<std::unique_ptr<testkit::TestCluster>> single_server_cluster(
    double rating, int max_queue, const server::AdmissionConfig& admission,
    double client_deadline_s = 0.0) {
  testkit::ClusterConfig config;
  config.servers = testkit::uniform_pool(1, /*workers=*/1);
  config.servers[0].slowdown_mode = server::SlowdownMode::kSleep;
  config.servers[0].max_queue = max_queue;
  config.servers[0].admission = admission;
  config.rating_base = rating;
  config.io_timeout_s = 10.0;
  config.client_deadline_s = client_deadline_s;
  return testkit::TestCluster::start(std::move(config));
}

// ---- satellite bugfix: shed at dequeue, never computed ----

// A job whose deadline budget lapses while it queues must be dropped when
// the dispatcher reaches it — before any compute — with a RETRYABLE error
// (another server may still make the deadline), and counted separately from
// admission-time sheds.
TEST(OverloadTest, ExpiredInQueueJobIsShedAtDequeueNeverComputed) {
  auto cluster = single_server_cluster(/*rating=*/500.0, /*max_queue=*/16, {});
  ASSERT_TRUE(cluster.ok()) << cluster.error().to_string();
  auto& server = cluster.value()->server(0);

  // Occupy the single worker for ~1s with an undeadlined job.
  auto occupier = cluster.value()->make_client();
  auto long_job = occupier.netsl_nb("simwork", {DataObject(std::int64_t{500})});
  ASSERT_TRUE(eventually([&] { return server.current_workload() >= 1.0; }));

  // Queue a short-budget job behind it: predicted service (~10ms) fits the
  // 0.4s budget at admission, but the budget lapses long before a slot
  // frees, so the dispatcher must shed it instead of computing.
  auto conn = net::TcpConnection::connect(server.endpoint());
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(net::send_message(conn.value(),
                                static_cast<std::uint16_t>(proto::MessageType::kSolveRequest),
                                encode_solve(7001, 5, /*deadline_s=*/0.4))
                  .ok());
  auto result = recv_solve_result(conn.value(), 5.0);
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  EXPECT_EQ(static_cast<ErrorCode>(result.value().error_code),
            ErrorCode::kServerOverloaded)
      << "dequeue shed must be retryable, not terminal";
  EXPECT_TRUE(is_retryable(static_cast<ErrorCode>(result.value().error_code)));

  EXPECT_GE(server.shed_dequeue(), 1u);
  EXPECT_EQ(server.shed_admission(), 0u);
  EXPECT_GE(server.shed(), 1u) << "legacy aggregate shed counter must still count";

  ASSERT_TRUE(long_job.wait().ok());
  // Only the occupier ever computed; the expired job never reached a kernel.
  EXPECT_EQ(server.completed(), 1u);

  auto snap = cluster.value()->scrape_server_metrics(0, "server.");
  ASSERT_TRUE(snap.ok());
  const auto* dequeue = snap.value().find("server.shed_dequeue_total");
  ASSERT_NE(dequeue, nullptr);
  EXPECT_GE(dequeue->count, 1u);
}

// ---- EDF ordering ----

// With the worker occupied, three queued jobs must start in deadline order,
// not arrival order.
TEST(OverloadTest, EdfDispatchesEarliestDeadlineFirst) {
  auto cluster = single_server_cluster(/*rating=*/1000.0, /*max_queue=*/16, {});
  ASSERT_TRUE(cluster.ok()) << cluster.error().to_string();
  auto& server = cluster.value()->server(0);

  auto occupier = cluster.value()->make_client();
  auto long_job = occupier.netsl_nb("simwork", {DataObject(std::int64_t{1000})});
  ASSERT_TRUE(eventually([&] { return server.current_workload() >= 1.0; }));

  // Arrival order A, B, C; deadline order B (2.0s) < C (3.5s) < A (5.0s).
  struct Waiter {
    net::TcpConnection conn;
    double done_at = 0.0;
    bool ok = false;
  };
  const double deadlines[3] = {5.0, 2.0, 3.5};
  std::vector<Waiter> waiters;
  for (int i = 0; i < 3; ++i) {
    auto conn = net::TcpConnection::connect(server.endpoint());
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE(
        net::send_message(conn.value(),
                          static_cast<std::uint16_t>(proto::MessageType::kSolveRequest),
                          encode_solve(7100 + static_cast<std::uint64_t>(i), 100,
                                       deadlines[i]))
            .ok());
    waiters.push_back(Waiter{std::move(conn).value()});
    sleep_seconds(0.02);  // pin arrival order
  }

  const Stopwatch watch;
  std::vector<std::thread> threads;
  for (auto& w : waiters) {
    threads.emplace_back([&w, &watch] {
      auto result = recv_solve_result(w.conn, 8.0);
      w.done_at = watch.elapsed();
      w.ok = result.ok() &&
             result.value().error_code == static_cast<std::uint16_t>(ErrorCode::kOk);
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_TRUE(long_job.wait().ok());

  for (const auto& w : waiters) EXPECT_TRUE(w.ok);
  // B before C before A.
  EXPECT_LT(waiters[1].done_at, waiters[2].done_at);
  EXPECT_LT(waiters[2].done_at, waiters[0].done_at);
}

// ---- acceptance (a): goodput under 3x offered load ----

// Under 3x the measured single-pool capacity with per-call deadlines, the
// admission queue must keep goodput (in-deadline successes per second) at
// >= 85% of capacity, and no successful call may finish past its budget.
TEST(OverloadTest, GoodputSurvivesThreeTimesOfferedLoad) {
  auto cluster = single_server_cluster(/*rating=*/1000.0, /*max_queue=*/64, {});
  ASSERT_TRUE(cluster.ok()) << cluster.error().to_string();

  // Measure capacity with a short closed-loop run: sequential 0.1s jobs,
  // including the full client/agent/transfer overhead per call.
  auto warm = cluster.value()->make_client();
  const int warm_jobs = 8;
  const Stopwatch cap_watch;
  for (int i = 0; i < warm_jobs; ++i) {
    auto out = warm.netsl("simwork", {DataObject(std::int64_t{100})});
    ASSERT_TRUE(out.ok()) << out.error().to_string();
  }
  const double capacity = warm_jobs / cap_watch.elapsed();

  client::ClientConfig cc;
  cc.agents = {cluster.value()->agent_endpoint()};
  cc.io_timeout_s = 10.0;
  cc.deadline_s = 0.5;
  client::NetSolveClient budgeted(cc);

  // Open-loop arrivals at 3x capacity for a 3s window.
  const double rate = 3.0 * capacity;
  const double window_s = 3.0;
  const int n = static_cast<int>(rate * window_s);
  std::vector<client::RequestHandle> handles;
  handles.reserve(static_cast<std::size_t>(n));
  const Stopwatch load_watch;
  for (int i = 0; i < n; ++i) {
    const double wait = i / rate - load_watch.elapsed();
    if (wait > 0.0) sleep_seconds(wait);
    handles.push_back(budgeted.netsl_nb("simwork", {DataObject(std::int64_t{100})}));
  }

  int successes = 0;
  for (auto& h : handles) {
    auto out = h.wait();
    if (!out.ok()) continue;
    ++successes;
    // No admitted-then-completed job finishes past its deadline (small
    // scheduling slack for the final client-side bookkeeping).
    EXPECT_LE(h.stats().total_seconds, cc.deadline_s + 0.05);
  }
  // Goodput over the offered-load window: arrivals stop at window_s, and the
  // post-window drain (failing calls waiting out their budgets) would only
  // add idle denominator time.
  const double goodput = successes / window_s;
  EXPECT_GE(goodput, 0.85 * capacity)
      << "goodput " << goodput << "/s vs capacity " << capacity << "/s (" << successes
      << "/" << n << " in-deadline)";

  // The overload actually engaged the control plane.
  const auto& server = cluster.value()->server(0);
  EXPECT_GE(server.shed_admission() + server.shed_dequeue(), 1u);
}

// ---- acceptance (b): per-client fairness ----

// One heavy client at 10x a light client's rate must not starve it: with
// quotas on, the light client's success rate stays >= 95%.
TEST(OverloadTest, HeavyClientCannotStarveLightClient) {
  server::AdmissionConfig admission;
  admission.quota_fraction = 0.25;  // 2 of the 8 queue slots per client
  auto cluster = single_server_cluster(/*rating=*/1000.0, /*max_queue=*/8, admission);
  ASSERT_TRUE(cluster.ok()) << cluster.error().to_string();

  const auto honored_before = metrics::counter("client.retry_after_honored_total").value();

  client::ClientConfig base;
  base.agents = {cluster.value()->agent_endpoint()};
  base.io_timeout_s = 10.0;
  base.deadline_s = 1.0;
  client::ClientConfig light_cc = base;
  light_cc.client_id = 0x11;
  client::ClientConfig heavy_cc = base;
  heavy_cc.client_id = 0x22;
  client::NetSolveClient light(light_cc);
  client::NetSolveClient heavy(heavy_cc);

  // Light: 5/s for 4s. Heavy: 50/s for 4s — 10x the rate, and together
  // ~2.75x the pool's ~20 jobs/s capacity (0.05s jobs, one worker).
  const auto drive = [](client::NetSolveClient& client, double rate, int jobs,
                        std::vector<client::RequestHandle>& out) {
    const Stopwatch watch;
    for (int i = 0; i < jobs; ++i) {
      const double wait = i / rate - watch.elapsed();
      if (wait > 0.0) sleep_seconds(wait);
      out.push_back(client.netsl_nb("simwork", {DataObject(std::int64_t{50})}));
    }
  };
  std::vector<client::RequestHandle> light_handles;
  std::vector<client::RequestHandle> heavy_handles;
  light_handles.reserve(20);
  heavy_handles.reserve(200);
  std::thread heavy_thread(
      [&] { drive(heavy, /*rate=*/50.0, /*jobs=*/200, heavy_handles); });
  drive(light, /*rate=*/5.0, /*jobs=*/20, light_handles);
  heavy_thread.join();

  int light_ok = 0;
  for (auto& h : light_handles) light_ok += h.wait().ok() ? 1 : 0;
  int heavy_ok = 0;
  for (auto& h : heavy_handles) heavy_ok += h.wait().ok() ? 1 : 0;

  EXPECT_GE(light_ok, 19) << "light client success rate fell below 95% ("
                          << light_ok << "/20; heavy got " << heavy_ok << "/200)";
  // The quota actually engaged against the heavy client...
  EXPECT_GE(cluster.value()->server(0).shed_quota(), 1u);
  // ...and its retry_after hints were honored by the client backoff.
  EXPECT_GT(metrics::counter("client.retry_after_honored_total").value(), honored_before);
}

// ---- CoDel sojourn shedder + AIMD concurrency limit ----

// Sustained pressure with no deadlines: the CoDel shedder must start
// dropping once sojourn stays above target, and the AIMD limit must back
// off below the static worker count on overload signals.
TEST(OverloadTest, CodelShedsAndAimdBacksOffUnderSustainedPressure) {
  server::AdmissionConfig admission;
  admission.codel_target_s = 0.05;
  admission.codel_interval_s = 0.1;
  admission.aimd = true;
  admission.aimd_min = 1;
  testkit::ClusterConfig config;
  config.servers = testkit::uniform_pool(1, /*workers=*/2);
  config.servers[0].slowdown_mode = server::SlowdownMode::kSleep;
  config.servers[0].max_queue = 64;
  config.servers[0].admission = admission;
  config.rating_base = 1000.0;
  config.io_timeout_s = 10.0;
  auto cluster = testkit::TestCluster::start(std::move(config));
  ASSERT_TRUE(cluster.ok()) << cluster.error().to_string();
  auto& server = cluster.value()->server(0);
  EXPECT_EQ(server.concurrency_limit(), 2);
  const auto backoffs_before = metrics::counter("server.aimd_backoff_total").value();

  // Flood: 40 undeadlined 0.1s jobs against ~20 jobs/s of capacity. Queue
  // sojourn blows through the 50ms target almost immediately.
  auto client = cluster.value()->make_client();
  std::vector<client::RequestHandle> handles;
  handles.reserve(40);
  for (int i = 0; i < 40; ++i) {
    handles.push_back(client.netsl_nb("simwork", {DataObject(std::int64_t{100})}));
  }

  EXPECT_TRUE(eventually([&] { return server.shed_codel() >= 1; }, 8.0))
      << "CoDel never shed under sustained queue pressure";
  // The instantaneous limit recovers within one service time (one success at
  // the floor restores it), so assert the monotonic backoff count instead of
  // racing a poll against the oscillation.
  EXPECT_TRUE(eventually(
      [&] { return metrics::counter("server.aimd_backoff_total").value() > backoffs_before; },
      8.0))
      << "AIMD never backed off the concurrency limit";

  for (auto& h : handles) (void)h.wait();  // calls may fail; drain them all

  // With the pressure gone, additive increase restores the full worker count.
  EXPECT_TRUE(eventually([&] { return server.concurrency_limit() == 2; }, 5.0))
      << "AIMD never recovered after the flood drained";

  auto snap = cluster.value()->scrape_server_metrics(0, "server.");
  ASSERT_TRUE(snap.ok());
  const auto* codel = snap.value().find("server.shed_codel_total");
  ASSERT_NE(codel, nullptr);
  EXPECT_GE(codel->count, 1u);
  const auto* sojourn = snap.value().find("server.queue_sojourn_s");
  ASSERT_NE(sojourn, nullptr);
  EXPECT_GE(sojourn->count, 1u);
}

}  // namespace
}  // namespace ns
