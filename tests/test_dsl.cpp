// Tests for ns_dsl: data objects (round-trip, sizes, hostile input),
// problem specs (validation, complexity), registry, and spec files.
#include <gtest/gtest.h>

#include "common/clock.hpp"
#include "dsl/problem.hpp"
#include "linalg/blas.hpp"
#include "dsl/registry.hpp"
#include "dsl/specfile.hpp"
#include "dsl/value.hpp"
#include "server/builtin_problems.hpp"

namespace ns::dsl {
namespace {

serial::Bytes encode_one(const DataObject& obj) {
  serial::Encoder enc;
  obj.encode(enc);
  return enc.take();
}

Result<DataObject> decode_one(const serial::Bytes& bytes) {
  serial::Decoder dec(bytes);
  auto obj = DataObject::decode(dec);
  if (obj.ok()) EXPECT_TRUE(dec.expect_exhausted().ok());
  return obj;
}

// ---- DataObject round trips ----

TEST(DataObjectTest, IntRoundTrip) {
  const DataObject obj(std::int64_t{-123456789});
  auto back = decode_one(encode_one(obj));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), obj);
  EXPECT_EQ(back.value().type(), DataType::kInt);
}

TEST(DataObjectTest, DoubleRoundTrip) {
  const DataObject obj(2.718281828);
  auto back = decode_one(encode_one(obj));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), obj);
}

TEST(DataObjectTest, StringRoundTrip) {
  const DataObject obj(std::string("hello netsolve"));
  auto back = decode_one(encode_one(obj));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().as_string(), "hello netsolve");
}

TEST(DataObjectTest, VectorRoundTrip) {
  const DataObject obj(linalg::Vector{1.5, -2.5, 0.0, 4.25});
  auto back = decode_one(encode_one(obj));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), obj);
}

TEST(DataObjectTest, MatrixRoundTrip) {
  Rng rng(1);
  const DataObject obj(linalg::Matrix::random(7, 5, rng));
  auto back = decode_one(encode_one(obj));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), obj);
  EXPECT_EQ(back.value().as_matrix().rows(), 7u);
  EXPECT_EQ(back.value().as_matrix().cols(), 5u);
}

TEST(DataObjectTest, SparseRoundTrip) {
  const DataObject obj(linalg::poisson_2d(4, 4));
  auto back = decode_one(encode_one(obj));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), obj);
}

TEST(DataObjectTest, EmptyContainers) {
  EXPECT_TRUE(decode_one(encode_one(DataObject(linalg::Vector{}))).ok());
  EXPECT_TRUE(decode_one(encode_one(DataObject(std::string{}))).ok());
}

// ---- size accounting ----

TEST(DataObjectTest, ByteSizeMatchesEncoding) {
  Rng rng(2);
  const std::vector<DataObject> objs = {
      DataObject(std::int64_t{7}),
      DataObject(1.5),
      DataObject(std::string("abcdef")),
      DataObject(linalg::Vector(100, 1.0)),
      DataObject(linalg::Matrix::random(9, 4, rng)),
      DataObject(linalg::poisson_1d(20)),
  };
  for (const auto& obj : objs) {
    EXPECT_EQ(obj.byte_size(), encode_one(obj).size())
        << "type " << static_cast<int>(obj.type());
  }
}

TEST(DataObjectTest, ArgsByteSizeMatchesEncoding) {
  Rng rng(3);
  const std::vector<DataObject> args = {DataObject(linalg::Matrix::random(6, 6, rng)),
                                        DataObject(linalg::Vector(6, 0.5))};
  serial::Encoder enc;
  encode_args(enc, args);
  EXPECT_EQ(args_byte_size(args), enc.size());
}

TEST(DataObjectTest, SizeHints) {
  Rng rng(4);
  EXPECT_EQ(DataObject(std::int64_t{512}).size_hint(), 512u);
  EXPECT_EQ(DataObject(std::int64_t{-3}).size_hint(), 3u);
  EXPECT_EQ(DataObject(std::int64_t{0}).size_hint(), 1u);
  EXPECT_EQ(DataObject(2.5).size_hint(), 1u);
  EXPECT_EQ(DataObject(linalg::Vector(42)).size_hint(), 42u);
  EXPECT_EQ(DataObject(linalg::Matrix(10, 30)).size_hint(), 30u);
  EXPECT_EQ(DataObject(linalg::poisson_1d(17)).size_hint(), 17u);
}

// ---- hostile input ----

TEST(DataObjectTest, UnknownTagRejected) {
  serial::Bytes bytes{99};
  serial::Decoder dec(bytes);
  EXPECT_FALSE(DataObject::decode(dec).ok());
}

TEST(DataObjectTest, MatrixSizeMismatchRejected) {
  serial::Encoder enc;
  enc.put_u8(static_cast<std::uint8_t>(DataType::kMatrix));
  enc.put_u32(3);
  enc.put_u32(3);
  enc.put_f64_array(std::vector<double>(5));  // 5 != 9
  serial::Decoder dec(enc.bytes());
  auto obj = DataObject::decode(dec);
  ASSERT_FALSE(obj.ok());
  EXPECT_EQ(obj.error().code, ErrorCode::kProtocol);
}

TEST(DataObjectTest, InvalidCsrPayloadRejected) {
  serial::Encoder enc;
  enc.put_u8(static_cast<std::uint8_t>(DataType::kSparse));
  enc.put_u32(2);
  enc.put_u32(2);
  enc.put_i32_array(std::vector<std::int32_t>{0, 1});  // indptr too short
  enc.put_i32_array(std::vector<std::int32_t>{0});
  enc.put_f64_array(std::vector<double>{1.0});
  serial::Decoder dec(enc.bytes());
  EXPECT_FALSE(DataObject::decode(dec).ok());
}

TEST(DataObjectTest, TruncatedPayloadRejected) {
  auto bytes = encode_one(DataObject(linalg::Vector(16, 1.0)));
  bytes.resize(bytes.size() / 2);
  serial::Decoder dec(bytes);
  EXPECT_FALSE(DataObject::decode(dec).ok());
}

TEST(ArgsTest, TooManyArgsRejected) {
  serial::Encoder enc;
  enc.put_u32(100000);
  serial::Decoder dec(enc.bytes());
  EXPECT_FALSE(decode_args(dec).ok());
}

// ---- property: random typed payloads survive the wire ----

class DataObjectRoundTripTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DataObjectRoundTripTest, RandomObjectsRoundTrip) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 25; ++trial) {
    DataObject obj;
    switch (rng.uniform_int(0, 5)) {
      case 0:
        obj = DataObject(static_cast<std::int64_t>(rng.next_u64()));
        break;
      case 1:
        obj = DataObject(rng.normal() * 1e12);
        break;
      case 2: {
        std::string s;
        const auto len = static_cast<std::size_t>(rng.uniform_int(0, 64));
        for (std::size_t i = 0; i < len; ++i) {
          s.push_back(static_cast<char>(rng.uniform_int(0, 255)));
        }
        obj = DataObject(std::move(s));
        break;
      }
      case 3:
        obj = DataObject(
            linalg::random_vector(static_cast<std::size_t>(rng.uniform_int(0, 200)), rng));
        break;
      case 4:
        obj = DataObject(
            linalg::Matrix::random(static_cast<std::size_t>(rng.uniform_int(1, 20)),
                                   static_cast<std::size_t>(rng.uniform_int(1, 20)), rng));
        break;
      default:
        obj = DataObject(linalg::random_sparse_spd(
            static_cast<std::size_t>(rng.uniform_int(1, 30)), 3, rng));
        break;
    }
    auto back = decode_one(encode_one(obj));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), obj);
    EXPECT_EQ(obj.byte_size(), encode_one(obj).size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DataObjectRoundTripTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

// ---- data type names ----

TEST(DataTypeTest, NameRoundTrip) {
  for (const auto t : {DataType::kInt, DataType::kDouble, DataType::kString, DataType::kVector,
                       DataType::kMatrix, DataType::kSparse}) {
    auto parsed = parse_data_type(data_type_name(t));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), t);
  }
  EXPECT_FALSE(parse_data_type("gibberish").ok());
}

// ---- ProblemSpec ----

ProblemSpec make_test_spec() {
  ProblemSpec spec;
  spec.name = "testp";
  spec.description = "a test problem";
  spec.inputs = {{"A", DataType::kMatrix}, {"b", DataType::kVector}};
  spec.outputs = {{"x", DataType::kVector}};
  spec.complexity = ComplexityModel{2.0, 3.0};
  spec.size_arg = 0;
  return spec;
}

TEST(ProblemSpecTest, ComplexityModel) {
  const ComplexityModel model{0.5, 3.0};
  EXPECT_DOUBLE_EQ(model.flops(10), 500.0);
  EXPECT_DOUBLE_EQ(model.flops(1), 0.5);
}

TEST(ProblemSpecTest, PredictedFlopsUsesSizeArg) {
  auto spec = make_test_spec();
  spec.size_arg = 1;
  const std::vector<DataObject> args = {DataObject(linalg::Matrix(100, 100)),
                                        DataObject(linalg::Vector(10))};
  EXPECT_DOUBLE_EQ(spec.predicted_flops(args), 2.0 * 1000.0);
}

TEST(ProblemSpecTest, PredictedFlopsFallsBackToFirstArg) {
  auto spec = make_test_spec();
  spec.size_arg = 9;  // out of range
  const std::vector<DataObject> args = {DataObject(linalg::Matrix(10, 10)),
                                        DataObject(linalg::Vector(10))};
  EXPECT_DOUBLE_EQ(spec.predicted_flops(args), 2.0 * 1000.0);
}

TEST(ProblemSpecTest, ValidateInputsAcceptsMatching) {
  const auto spec = make_test_spec();
  EXPECT_TRUE(spec.validate_inputs({DataObject(linalg::Matrix(2, 2)),
                                    DataObject(linalg::Vector(2))})
                  .ok());
}

TEST(ProblemSpecTest, ValidateInputsRejectsCountMismatch) {
  const auto spec = make_test_spec();
  auto status = spec.validate_inputs({DataObject(linalg::Matrix(2, 2))});
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, ErrorCode::kBadArguments);
}

TEST(ProblemSpecTest, ValidateInputsRejectsTypeMismatch) {
  const auto spec = make_test_spec();
  auto status =
      spec.validate_inputs({DataObject(1.5), DataObject(linalg::Vector(2))});
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.error().message.find("expects matrixd"), std::string::npos);
}

TEST(ProblemSpecTest, ValidateOutputs) {
  const auto spec = make_test_spec();
  EXPECT_TRUE(spec.validate_outputs({DataObject(linalg::Vector(2))}).ok());
  EXPECT_FALSE(spec.validate_outputs({DataObject(1.0)}).ok());
  EXPECT_FALSE(spec.validate_outputs({}).ok());
}

TEST(ProblemSpecTest, WireRoundTrip) {
  const auto spec = make_test_spec();
  serial::Encoder enc;
  spec.encode(enc);
  serial::Decoder dec(enc.bytes());
  auto back = ProblemSpec::decode(dec);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), spec);
}

// ---- registry ----

TEST(RegistryTest, ExecuteValidatedProblem) {
  ProblemRegistry registry;
  ProblemSpec spec;
  spec.name = "double_it";
  spec.inputs = {{"x", DataType::kDouble}};
  spec.outputs = {{"y", DataType::kDouble}};
  registry.add(spec, [](const std::vector<DataObject>& args) -> Result<std::vector<DataObject>> {
    return std::vector<DataObject>{DataObject(args[0].as_double() * 2)};
  });

  EXPECT_TRUE(registry.contains("double_it"));
  EXPECT_EQ(registry.size(), 1u);
  auto out = registry.execute("double_it", {DataObject(21.0)});
  ASSERT_TRUE(out.ok());
  EXPECT_DOUBLE_EQ(out.value()[0].as_double(), 42.0);
}

TEST(RegistryTest, UnknownProblem) {
  ProblemRegistry registry;
  auto out = registry.execute("nope", {});
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.error().code, ErrorCode::kUnknownProblem);
}

TEST(RegistryTest, InputValidationBeforeExecution) {
  ProblemRegistry registry;
  ProblemSpec spec;
  spec.name = "p";
  spec.inputs = {{"x", DataType::kDouble}};
  spec.outputs = {{"y", DataType::kDouble}};
  bool executed = false;
  registry.add(spec, [&executed](const auto&) -> Result<std::vector<DataObject>> {
    executed = true;
    return std::vector<DataObject>{DataObject(0.0)};
  });
  auto out = registry.execute("p", {DataObject(std::string("wrong type"))});
  EXPECT_FALSE(out.ok());
  EXPECT_FALSE(executed) << "executor must not run on invalid input";
}

TEST(RegistryTest, OutputValidationCatchesBuggyExecutor) {
  ProblemRegistry registry;
  ProblemSpec spec;
  spec.name = "buggy";
  spec.inputs = {};
  spec.outputs = {{"y", DataType::kDouble}};
  registry.add(spec, [](const auto&) -> Result<std::vector<DataObject>> {
    return std::vector<DataObject>{DataObject(std::string("not a double"))};
  });
  auto out = registry.execute("buggy", {});
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.error().code, ErrorCode::kExecutionFailed);
}

TEST(RegistryTest, OverrideSpecKeepsExecutor) {
  ProblemRegistry registry;
  ProblemSpec spec;
  spec.name = "p";
  spec.inputs = {{"x", DataType::kDouble}};
  spec.outputs = {{"y", DataType::kDouble}};
  spec.complexity = {1.0, 1.0};
  registry.add(spec, [](const std::vector<DataObject>& args) -> Result<std::vector<DataObject>> {
    return std::vector<DataObject>{DataObject(args[0].as_double() + 1)};
  });

  ProblemSpec tuned = spec;
  tuned.description = "re-tuned by the admin";
  tuned.complexity = {42.0, 2.5};
  tuned.inputs[0].name = "renamed_ok";
  ASSERT_TRUE(registry.override_spec(tuned).ok());
  EXPECT_EQ(registry.spec("p")->description, "re-tuned by the admin");
  EXPECT_DOUBLE_EQ(registry.spec("p")->complexity.a, 42.0);
  // Executor untouched.
  EXPECT_DOUBLE_EQ(registry.execute("p", {DataObject(1.0)}).value()[0].as_double(), 2.0);
}

TEST(RegistryTest, OverrideSpecRejectsSignatureChange) {
  ProblemRegistry registry;
  ProblemSpec spec;
  spec.name = "p";
  spec.inputs = {{"x", DataType::kDouble}};
  spec.outputs = {{"y", DataType::kDouble}};
  registry.add(spec, [](const auto&) -> Result<std::vector<DataObject>> {
    return std::vector<DataObject>{DataObject(0.0)};
  });

  ProblemSpec wrong_type = spec;
  wrong_type.inputs[0].type = DataType::kMatrix;
  EXPECT_FALSE(registry.override_spec(wrong_type).ok());

  ProblemSpec wrong_arity = spec;
  wrong_arity.inputs.push_back({"extra", DataType::kInt});
  EXPECT_FALSE(registry.override_spec(wrong_arity).ok());

  ProblemSpec unknown = spec;
  unknown.name = "nope";
  auto status = registry.override_spec(unknown);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, ErrorCode::kUnknownProblem);
}

TEST(RegistryTest, ReregistrationReplaces) {
  ProblemRegistry registry;
  ProblemSpec spec;
  spec.name = "p";
  spec.outputs = {{"y", DataType::kInt}};
  registry.add(spec, [](const auto&) -> Result<std::vector<DataObject>> {
    return std::vector<DataObject>{DataObject(std::int64_t{1})};
  });
  registry.add(spec, [](const auto&) -> Result<std::vector<DataObject>> {
    return std::vector<DataObject>{DataObject(std::int64_t{2})};
  });
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(registry.execute("p", {}).value()[0].as_int(), 2);
}

// ---- spec files ----

TEST(SpecFileTest, ParseSingleBlock) {
  const auto specs = parse_spec_file(R"(
# catalogue fragment
@PROBLEM dgesv
@DESCRIPTION Solve a dense linear system
@INPUT A matrixd
@INPUT b vectord
@OUTPUT x vectord
@COMPLEXITY 0.667 3
)");
  ASSERT_TRUE(specs.ok());
  ASSERT_EQ(specs.value().size(), 1u);
  const auto& spec = specs.value()[0];
  EXPECT_EQ(spec.name, "dgesv");
  EXPECT_EQ(spec.description, "Solve a dense linear system");
  ASSERT_EQ(spec.inputs.size(), 2u);
  EXPECT_EQ(spec.inputs[0].name, "A");
  EXPECT_EQ(spec.inputs[0].type, DataType::kMatrix);
  ASSERT_EQ(spec.outputs.size(), 1u);
  EXPECT_DOUBLE_EQ(spec.complexity.a, 0.667);
  EXPECT_DOUBLE_EQ(spec.complexity.b, 3.0);
  EXPECT_EQ(spec.size_arg, 0u);
}

TEST(SpecFileTest, ParseMultipleBlocksWithSizeArg) {
  const auto specs = parse_spec_file(R"(
@PROBLEM one
@OUTPUT y double
@COMPLEXITY 1 1

@PROBLEM two
@INPUT n int
@INPUT x vectord
@OUTPUT y vectord
@COMPLEXITY 2 1
@SIZEARG 1
)");
  ASSERT_TRUE(specs.ok());
  ASSERT_EQ(specs.value().size(), 2u);
  EXPECT_EQ(specs.value()[1].size_arg, 1u);
}

TEST(SpecFileTest, Errors) {
  EXPECT_FALSE(parse_spec_file("@INPUT x double\n").ok()) << "directive before @PROBLEM";
  EXPECT_FALSE(parse_spec_file("@PROBLEM\n").ok()) << "missing name";
  EXPECT_FALSE(parse_spec_file("@PROBLEM p\n@INPUT x bogustype\n").ok()) << "bad type";
  EXPECT_FALSE(parse_spec_file("@PROBLEM p\n@COMPLEXITY a b\n").ok()) << "non-numeric";
  EXPECT_FALSE(parse_spec_file("@PROBLEM p\n@WHATEVER x\n").ok()) << "unknown directive";
  EXPECT_FALSE(parse_spec_file("@PROBLEM p\n@SIZEARG -1\n").ok()) << "negative size arg";
}

TEST(SpecFileTest, FormatParsesBack) {
  auto spec = make_test_spec();
  const std::string text = format_spec_file({spec});
  auto parsed = parse_spec_file(text);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.value().size(), 1u);
  EXPECT_EQ(parsed.value()[0], spec);
}

TEST(SpecFileTest, BuiltinCatalogueRoundTrips) {
  const std::string text = server::builtin_spec_text();
  auto specs = parse_spec_file(text);
  ASSERT_TRUE(specs.ok());
  EXPECT_GE(specs.value().size(), 15u) << "catalogue should be substantial";
  // Spot-check a few expected entries.
  bool has_dgesv = false, has_cg = false, has_mandelbrot = false;
  for (const auto& s : specs.value()) {
    if (s.name == "dgesv") has_dgesv = true;
    if (s.name == "cg") has_cg = true;
    if (s.name == "mandelbrot") has_mandelbrot = true;
  }
  EXPECT_TRUE(has_dgesv);
  EXPECT_TRUE(has_cg);
  EXPECT_TRUE(has_mandelbrot);
}

// ---- builtin problem executors (direct, no network) ----

class BuiltinProblemTest : public ::testing::Test {
 protected:
  BuiltinProblemTest() { server::register_builtin_problems(registry_, 200.0); }
  ProblemRegistry registry_;
  Rng rng_{0xabc};
};

TEST_F(BuiltinProblemTest, DgesvSolves) {
  const auto a = linalg::Matrix::random_diag_dominant(20, rng_);
  const auto x_true = linalg::random_vector(20, rng_);
  linalg::Vector b(20, 0.0);
  linalg::gemv(1.0, a, x_true, 0.0, b);
  auto out = registry_.execute("dgesv", {DataObject(a), DataObject(b)});
  ASSERT_TRUE(out.ok());
  EXPECT_LT(linalg::max_abs_diff(out.value()[0].as_vector(), x_true), 1e-8);
}

TEST_F(BuiltinProblemTest, DgemmMultiplies) {
  const auto a = linalg::Matrix::random(8, 6, rng_);
  const auto b = linalg::Matrix::random(6, 4, rng_);
  auto out = registry_.execute("dgemm", {DataObject(a), DataObject(b)});
  ASSERT_TRUE(out.ok());
  EXPECT_LT(linalg::max_abs_diff(out.value()[0].as_matrix(), linalg::matmul(a, b)), 1e-12);
}

TEST_F(BuiltinProblemTest, DimensionMismatchSurfacesBadArguments) {
  auto out = registry_.execute(
      "dgemm", {DataObject(linalg::Matrix(3, 3)), DataObject(linalg::Matrix(4, 4))});
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.error().code, ErrorCode::kBadArguments);
}

TEST_F(BuiltinProblemTest, CgSolvesSparse) {
  const auto a = linalg::poisson_2d(8, 8);
  const linalg::Vector b(64, 1.0);
  auto out = registry_.execute("cg", {DataObject(a), DataObject(b)});
  ASSERT_TRUE(out.ok());
  EXPECT_GT(out.value()[1].as_int(), 0) << "iteration count reported";
  const auto& x = out.value()[0].as_vector();
  const auto ax = a.multiply(x);
  for (std::size_t i = 0; i < 64; ++i) EXPECT_NEAR(ax[i], 1.0, 1e-6);
}

TEST_F(BuiltinProblemTest, MandelbrotCountsBounded) {
  auto out = registry_.execute(
      "mandelbrot", {DataObject(-0.5), DataObject(0.0), DataObject(1.5),
                     DataObject(std::int64_t{16}), DataObject(std::int64_t{50})});
  ASSERT_TRUE(out.ok());
  const auto& counts = out.value()[0].as_vector();
  ASSERT_EQ(counts.size(), 256u);
  for (const double c : counts) {
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 50.0);
  }
}

TEST_F(BuiltinProblemTest, MandelbrotRejectsBadResolution) {
  auto out = registry_.execute(
      "mandelbrot", {DataObject(0.0), DataObject(0.0), DataObject(1.0),
                     DataObject(std::int64_t{-1}), DataObject(std::int64_t{10})});
  EXPECT_FALSE(out.ok());
}

TEST_F(BuiltinProblemTest, BusyworkTakesProportionalTime) {
  // At 200 "Mflops", 20 Mflop should take ~0.1 s and 5 Mflop ~0.025 s.
  const Stopwatch w1;
  ASSERT_TRUE(registry_.execute("busywork", {DataObject(std::int64_t{20})}).ok());
  const double t20 = w1.elapsed();
  const Stopwatch w2;
  ASSERT_TRUE(registry_.execute("busywork", {DataObject(std::int64_t{5})}).ok());
  const double t5 = w2.elapsed();
  EXPECT_NEAR(t20, 0.1, 0.05);
  EXPECT_GT(t20, t5 * 2);
}

TEST_F(BuiltinProblemTest, EigSymOrdered) {
  const auto a = linalg::Matrix::random_spd(10, rng_);
  auto out = registry_.execute("eig_sym", {DataObject(a)});
  ASSERT_TRUE(out.ok());
  const auto& values = out.value()[0].as_vector();
  for (std::size_t i = 1; i < values.size(); ++i) {
    EXPECT_LE(values[i - 1], values[i] + 1e-12);
  }
}

TEST_F(BuiltinProblemTest, PolyfitViaRegistry) {
  linalg::Vector x{0, 1, 2, 3}, y{1, 3, 5, 7};
  auto out = registry_.execute(
      "polyfit", {DataObject(x), DataObject(y), DataObject(std::int64_t{1})});
  ASSERT_TRUE(out.ok());
  EXPECT_NEAR(out.value()[0].as_vector()[0], 1.0, 1e-9);
  EXPECT_NEAR(out.value()[0].as_vector()[1], 2.0, 1e-9);
}

}  // namespace
}  // namespace ns::dsl
