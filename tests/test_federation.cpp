// Agent federation: registry snapshots flow between peer agents so a client
// can query any agent in the mesh; freshness resolution keeps the newest
// information per server; overload admission control interacts with retry.
#include <gtest/gtest.h>

#include "agent/agent.hpp"
#include "common/clock.hpp"
#include "linalg/blas.hpp"
#include "testkit/cluster.hpp"

namespace ns {
namespace {

using dsl::DataObject;

// ---- registry-level sync semantics ----

proto::SyncEntry sample_entry(const std::string& name, double workload, double age) {
  proto::SyncEntry entry;
  entry.server_name = name;
  entry.endpoint = {"127.0.0.1", 7777};
  entry.mflops = 300.0;
  entry.workload = workload;
  entry.alive = true;
  entry.age_seconds = age;
  dsl::ProblemSpec spec;
  spec.name = "solve";
  spec.complexity = {1.0, 3.0};
  entry.problems = {spec};
  return entry;
}

TEST(SyncSemanticsTest, ForeignServerAdopted) {
  agent::ServerRegistry registry;
  EXPECT_TRUE(registry.apply_sync(sample_entry("remote1", 1.5, 0.0)));
  EXPECT_EQ(registry.alive_count(), 1u);
  const auto all = registry.all();
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].name, "remote1");
  EXPECT_DOUBLE_EQ(all[0].workload, 1.5);
  EXPECT_TRUE(registry.problem_spec("solve").has_value());
}

TEST(SyncSemanticsTest, FresherEntryWins) {
  agent::ServerRegistry registry;
  ASSERT_TRUE(registry.apply_sync(sample_entry("s", 1.0, 0.0)));
  // A much staler entry must be rejected...
  EXPECT_FALSE(registry.apply_sync(sample_entry("s", 9.0, 100.0)));
  EXPECT_DOUBLE_EQ(registry.all()[0].workload, 1.0);
  // ...a fresher one accepted.
  sleep_seconds(0.02);
  EXPECT_TRUE(registry.apply_sync(sample_entry("s", 2.0, 0.0)));
  EXPECT_DOUBLE_EQ(registry.all()[0].workload, 2.0);
}

TEST(SyncSemanticsTest, LocalRegistrationNotClobberedByStaleSync) {
  agent::ServerRegistry registry;
  proto::RegisterServer reg;
  reg.server_name = "s";
  reg.endpoint = {"127.0.0.1", 7777};
  reg.mflops = 500.0;
  const auto id = registry.add(reg);
  EXPECT_FALSE(registry.apply_sync(sample_entry("s", 5.0, 60.0)))
      << "hour-old peer data must not overwrite a fresh registration";
  EXPECT_DOUBLE_EQ(registry.find(id)->mflops, 500.0);
}

TEST(SyncSemanticsTest, SnapshotRoundTripsThroughApply) {
  agent::ServerRegistry a;
  proto::RegisterServer reg;
  reg.server_name = "origin";
  reg.endpoint = {"127.0.0.1", 1234};
  reg.mflops = 250.0;
  dsl::ProblemSpec spec;
  spec.name = "p1";
  reg.problems = {spec};
  a.add(reg);

  agent::ServerRegistry b;
  for (const auto& entry : a.snapshot_for_sync()) {
    EXPECT_TRUE(b.apply_sync(entry));
  }
  ASSERT_EQ(b.all().size(), 1u);
  EXPECT_EQ(b.all()[0].name, "origin");
  EXPECT_DOUBLE_EQ(b.all()[0].mflops, 250.0);
  EXPECT_EQ(b.candidates_for("p1").size(), 1u);
}

// ---- live two-agent mesh ----

class FederationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Agent A and agent B peered with each other.
    agent::AgentConfig config_a;
    config_a.sync_period_s = 0.05;
    auto a = agent::Agent::start(config_a);
    ASSERT_TRUE(a.ok());
    agent_a_ = std::move(a).value();

    agent::AgentConfig config_b;
    config_b.peers = {agent_a_->endpoint()};
    config_b.sync_period_s = 0.05;
    auto b = agent::Agent::start(config_b);
    ASSERT_TRUE(b.ok());
    agent_b_ = std::move(b).value();

    // A cannot know B's ephemeral port at construction; A's peer list is
    // injected via a one-way mesh (B -> A). For the A -> B direction the
    // tests below re-register or rely on B -> A flow.
  }

  void TearDown() override {
    if (agent_a_) agent_a_->stop();
    if (agent_b_) agent_b_->stop();
  }

  client::NetSolveClient client_for(const agent::Agent& agent) {
    client::ClientConfig config;
    config.agents = {agent.endpoint()};
    return client::NetSolveClient(config);
  }

  std::unique_ptr<agent::Agent> agent_a_;
  std::unique_ptr<agent::Agent> agent_b_;
};

TEST_F(FederationTest, ServerAtBVisibleThroughA) {
  // Server registers at agent B; B syncs to A; a client of A can solve.
  server::ServerConfig sc;
  sc.name = "fed_server";
  sc.agents = {agent_b_->endpoint()};
  sc.rating_override = 400.0;
  auto server = server::ComputeServer::start(std::move(sc));
  ASSERT_TRUE(server.ok());

  const Deadline deadline(5.0);
  while (agent_a_->registry().alive_count() == 0 && !deadline.expired()) {
    sleep_seconds(0.02);
  }
  ASSERT_GE(agent_a_->registry().alive_count(), 1u) << "sync must reach agent A";

  auto client = client_for(*agent_a_);
  Rng rng(1);
  const auto a = linalg::Matrix::random_diag_dominant(24, rng);
  const auto b = linalg::random_vector(24, rng);
  client::CallStats stats;
  auto out = client.netsl("dgesv", {DataObject(a), DataObject(b)}, &stats);
  ASSERT_TRUE(out.ok()) << out.error().to_string();
  EXPECT_EQ(stats.server_name, "fed_server");
  EXPECT_LT(linalg::residual_inf(a, out.value()[0].as_vector(), b), 1e-8);
  server.value()->stop();
}

TEST_F(FederationTest, WorkloadUpdatesPropagate) {
  server::ServerConfig sc;
  sc.name = "busy_fed";
  sc.agents = {agent_b_->endpoint()};
  sc.rating_override = 400.0;
  sc.background_load = 3.0;
  sc.report_period_s = 0.02;
  auto server = server::ComputeServer::start(std::move(sc));
  ASSERT_TRUE(server.ok());

  const Deadline deadline(5.0);
  double seen = -1.0;
  while (!deadline.expired()) {
    const auto all = agent_a_->registry().all();
    if (!all.empty() && all[0].workload >= 3.0) {
      seen = all[0].workload;
      break;
    }
    sleep_seconds(0.02);
  }
  EXPECT_DOUBLE_EQ(seen, 3.0) << "background load must reach the peer agent";
  server.value()->stop();
}

TEST_F(FederationTest, CatalogueMergesAcrossMesh) {
  server::ServerConfig sc;
  sc.name = "specialized";
  sc.agents = {agent_b_->endpoint()};
  sc.rating_override = 400.0;
  sc.problem_filter = {"fft", "convolve"};
  auto server = server::ComputeServer::start(std::move(sc));
  ASSERT_TRUE(server.ok());

  auto client = client_for(*agent_a_);
  const Deadline deadline(5.0);
  std::size_t count = 0;
  while (!deadline.expired()) {
    auto problems = client.list_problems();
    if (problems.ok() && problems.value().size() == 2) {
      count = problems.value().size();
      break;
    }
    sleep_seconds(0.02);
  }
  EXPECT_EQ(count, 2u);
  server.value()->stop();
}

// ---- agent restart resilience ----

TEST(AgentRestartTest, ServerRejoinsNewAgentOnSamePort) {
  // Agent 1 on an ephemeral port; remember the port, stop it, start agent 2
  // on the same port. A re-registering server must appear at agent 2.
  agent::AgentConfig ac;
  auto agent1 = agent::Agent::start(ac);
  ASSERT_TRUE(agent1.ok());
  const auto port = agent1.value()->endpoint().port;

  server::ServerConfig sc;
  sc.name = "phoenix";
  sc.agents = {agent1.value()->endpoint()};
  sc.rating_override = 400.0;
  sc.reregister_period_s = 0.05;
  sc.report_period_s = 0.05;
  auto server = server::ComputeServer::start(std::move(sc));
  ASSERT_TRUE(server.ok());
  ASSERT_EQ(agent1.value()->registry().alive_count(), 1u);

  agent1.value()->stop();
  agent1.value().reset();

  agent::AgentConfig ac2;
  ac2.listen.port = port;
  auto agent2 = agent::Agent::start(ac2);
  ASSERT_TRUE(agent2.ok()) << agent2.error().to_string();

  const Deadline deadline(5.0);
  while (agent2.value()->registry().alive_count() == 0 && !deadline.expired()) {
    sleep_seconds(0.02);
  }
  EXPECT_EQ(agent2.value()->registry().alive_count(), 1u)
      << "server must re-register with the restarted agent";

  // And the new agent can schedule onto it.
  client::ClientConfig cc;
  cc.agents = {agent2.value()->endpoint()};
  client::NetSolveClient client(cc);
  EXPECT_TRUE(client.call("ddot", linalg::Vector{1.0, 2.0}, linalg::Vector{3.0, 4.0}).ok());

  server.value()->stop();
  agent2.value()->stop();
}

// ---- admission control ----

TEST(AdmissionControlTest, OverloadedServerRejectsAndClientRetries) {
  testkit::ClusterConfig config;
  // One tiny server that rejects queueing, one spacious fallback.
  testkit::ClusterServerSpec tiny;
  tiny.name = "tiny";
  tiny.workers = 1;
  tiny.max_queue = 1;
  tiny.slowdown_mode = server::SlowdownMode::kSleep;
  testkit::ClusterServerSpec big;
  big.name = "big";
  big.workers = 8;
  big.slowdown_mode = server::SlowdownMode::kSleep;
  big.speed = 0.9;  // slightly slower so MCT prefers tiny when idle
  config.servers = {tiny, big};
  config.rating_base = 1000.0;
  auto cluster = testkit::TestCluster::start(std::move(config));
  ASSERT_TRUE(cluster.ok());
  // Transient overload must not blacklist.
  // (registry defaults blacklist after 1 failure; overload is retryable and
  // reported, so allow many failures.)
  auto client = cluster.value()->make_client();

  // Slam 10 concurrent 100ms jobs: tiny can hold at most 2 (1 running +
  // 1 queued); the rest must be rejected there and absorbed by big.
  std::vector<client::RequestHandle> handles;
  for (int i = 0; i < 10; ++i) {
    handles.push_back(client.netsl_nb("simwork", {DataObject(std::int64_t{100})}));
  }
  int ok = 0;
  for (auto& h : handles) {
    if (h.wait().ok()) ++ok;
  }
  EXPECT_EQ(ok, 10) << "overload rejections must be absorbed by retry";
}

TEST(AdmissionControlTest, SingleOverloadedServerExhausts) {
  testkit::ClusterConfig config;
  testkit::ClusterServerSpec tiny;
  tiny.name = "tiny";
  tiny.workers = 1;
  tiny.max_queue = 1;
  tiny.slowdown_mode = server::SlowdownMode::kSleep;
  config.servers = {tiny};
  config.rating_base = 1000.0;
  config.registry.max_failures = 1 << 30;  // keep it alive through rejections
  auto cluster = testkit::TestCluster::start(std::move(config));
  ASSERT_TRUE(cluster.ok());
  auto client = cluster.value()->make_client();

  std::vector<client::RequestHandle> handles;
  for (int i = 0; i < 6; ++i) {
    handles.push_back(client.netsl_nb("simwork", {DataObject(std::int64_t{200})}));
  }
  int ok = 0, overloaded = 0;
  for (auto& h : handles) {
    auto out = h.wait();
    if (out.ok()) {
      ++ok;
    } else if (out.error().code == ErrorCode::kRetriesExhausted) {
      ++overloaded;
    }
  }
  EXPECT_GE(ok, 2) << "capacity (1 running + 1 queued) must be served";
  EXPECT_GE(overloaded, 1) << "beyond-capacity requests surface as exhausted retries";
  EXPECT_EQ(ok + overloaded, 6);
}

}  // namespace
}  // namespace ns
