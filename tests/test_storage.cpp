// Storage-fault armor: injected disk failures, graceful durability
// degradation, and cross-server checkpoint replication.
//
// These tests pin the three layers added for hostile storage:
//   - the vfs fault seam and bytepack codec themselves (unit),
//   - a journaling server whose disk starts failing mid-burst fail-stops the
//     journal, degrades to explicitly non-durable, keeps serving (goodput),
//     sheds durable-required work retryably, and advertises durable=false,
//   - a server crashed (not drained) mid-iterative-solve whose checkpoints
//     were replicated to a peer: the client fails over, the peer adopts the
//     job from the last replicated snapshot, and at most one checkpoint
//     interval of work is recomputed.
#include <gtest/gtest.h>

#include <fcntl.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "client/client.hpp"
#include "common/bytepack.hpp"
#include "common/clock.hpp"
#include "common/metrics.hpp"
#include "common/vfs.hpp"
#include "net/transport.hpp"
#include "proto/messages.hpp"
#include "testkit/cluster.hpp"

namespace ns {
namespace {

using dsl::DataObject;

template <typename Pred>
bool eventually(Pred pred, double timeout_s = 5.0) {
  const Deadline deadline(timeout_s);
  while (!deadline.expired()) {
    if (pred()) return true;
    sleep_seconds(0.005);
  }
  return pred();
}

struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "/tmp/ns_storage_XXXXXX";
    const char* made = ::mkdtemp(tmpl);
    path = made != nullptr ? made : "/tmp/ns_storage_fallback";
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

// ---- bytepack codec ----

serial::Bytes synthetic_state(std::size_t doubles, double scale) {
  // Checkpoint-shaped payload: a vector of f64s drawn from a small value
  // alphabet (solver states repeat boundary values, zeros, and converged
  // entries), the case the byte-plane shuffle + RLE pipeline is built for.
  serial::Bytes out(doubles * sizeof(double));
  for (std::size_t i = 0; i < doubles; ++i) {
    const double v = scale * static_cast<double>(i % 4);
    std::memcpy(out.data() + i * sizeof(double), &v, sizeof(double));
  }
  return out;
}

TEST(BytepackTest, RawRoundTrip) {
  const serial::Bytes data = {1, 2, 3, 4, 5};
  const auto packed = bytepack::pack_raw(data);
  auto out = bytepack::unpack(packed);
  ASSERT_TRUE(out.ok()) << out.error().to_string();
  EXPECT_EQ(out.value(), data);
}

TEST(BytepackTest, PackedRoundTripAndShrinks) {
  const auto data = synthetic_state(4096, 3.25);
  const auto packed = bytepack::pack(data);
  EXPECT_LT(packed.size(), data.size() / 2) << "compressible state did not shrink";
  auto out = bytepack::unpack(packed);
  ASSERT_TRUE(out.ok()) << out.error().to_string();
  EXPECT_EQ(out.value(), data);
}

TEST(BytepackTest, DeltaRoundTripShrinksMore) {
  const auto base = synthetic_state(4096, 3.25);
  auto next = base;
  // A few scattered f64s change between snapshots — the typical iterative
  // kernel step.
  for (std::size_t i = 0; i < next.size(); i += 512) next[i] ^= 0x5a;
  const auto full = bytepack::pack(next);
  const auto delta = bytepack::pack(next, &base);
  ASSERT_TRUE(bytepack::is_delta(delta));
  EXPECT_LT(delta.size(), full.size());
  auto out = bytepack::unpack(delta, &base);
  ASSERT_TRUE(out.ok()) << out.error().to_string();
  EXPECT_EQ(out.value(), next);
  // A delta without its base must refuse, not emit garbage.
  EXPECT_FALSE(bytepack::unpack(delta).ok());
  const auto wrong = synthetic_state(100, 1.0);
  EXPECT_FALSE(bytepack::unpack(delta, &wrong).ok());
}

TEST(BytepackTest, IncompressibleFallsBackToRaw) {
  serial::Bytes noise(4096);
  std::uint64_t x = 0x9e3779b97f4a7c15ull;
  for (auto& b : noise) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    b = static_cast<std::uint8_t>(x);
  }
  const auto packed = bytepack::pack(noise);
  EXPECT_LE(packed.size(), noise.size() + 16);  // frame header only
  auto out = bytepack::unpack(packed);
  ASSERT_TRUE(out.ok()) << out.error().to_string();
  EXPECT_EQ(out.value(), noise);
}

TEST(BytepackTest, CorruptFramesAreRefused) {
  const auto data = synthetic_state(512, 2.0);
  auto packed = bytepack::pack(data);
  for (std::size_t i = 0; i < packed.size(); i += 7) {
    auto copy = packed;
    copy[i] ^= 0xff;
    auto out = bytepack::unpack(copy);
    if (out.ok()) {
      // A flip the framing cannot detect must still produce exactly-sized
      // output (RLE bounds hold); it may differ in content — the journal
      // CRC / wire CRC above this layer catches that.
      EXPECT_EQ(out.value().size(), data.size());
    }
  }
  EXPECT_FALSE(bytepack::unpack(serial::Bytes{}).ok());
}

// ---- vfs fault injector (unit) ----

TEST(VfsTest, EnospcAndShortWriteFailWrites) {
  TempDir dir;
  auto& inj = vfs::StorageFaultInjector::instance();
  inj.disarm_all();
  const std::string path = dir.path + "/f";
  {
    // First write fails ENOSPC, later writes succeed (max_triggers=1).
    inj.arm(dir.path, vfs::StorageFaultPlan::single(vfs::StorageFaultMode::kEnospc,
                                                    1.0, /*max_triggers=*/1));
    const int fd = vfs::open(path, O_CREAT | O_WRONLY | O_TRUNC, 0644);
    ASSERT_GE(fd, 0);
    const char buf[8] = "1234567";
    errno = 0;
    EXPECT_EQ(vfs::write(fd, path, buf, 8), -1);
    EXPECT_EQ(errno, ENOSPC);
    EXPECT_EQ(vfs::write(fd, path, buf, 8), 8);
    vfs::close(fd);
    EXPECT_EQ(inj.triggered_count(), 1u);
    inj.disarm_all();
  }
  {
    // Short write: half the buffer lands, then ENOSPC — a torn record.
    inj.arm(dir.path, vfs::StorageFaultPlan::single(vfs::StorageFaultMode::kShortWrite,
                                                    1.0, /*max_triggers=*/1));
    const int fd = vfs::open(path, O_CREAT | O_WRONLY | O_TRUNC, 0644);
    ASSERT_GE(fd, 0);
    const char buf[8] = "1234567";
    errno = 0;
    EXPECT_EQ(vfs::write(fd, path, buf, 8), -1);
    EXPECT_EQ(errno, ENOSPC);
    vfs::close(fd);
    EXPECT_EQ(std::filesystem::file_size(path), 4u) << "torn write not half-landed";
    inj.disarm_all();
  }
}

TEST(VfsTest, CrashFreezeMakesMutationsSilentNoOps) {
  TempDir dir;
  auto& inj = vfs::StorageFaultInjector::instance();
  inj.disarm_all();
  inj.arm(dir.path, vfs::StorageFaultPlan::single(
                        vfs::StorageFaultMode::kCrashBeforeRename, 1.0));
  const std::string a = dir.path + "/a", b = dir.path + "/b";
  {
    const int fd = vfs::open(a, O_CREAT | O_WRONLY | O_TRUNC, 0644);
    ASSERT_GE(fd, 0);
    EXPECT_EQ(vfs::write(fd, a, "live", 4), 4);
    vfs::close(fd);
  }
  EXPECT_EQ(vfs::rename(a, b), 0);  // "crash": rename reports ok but never lands
  EXPECT_TRUE(inj.crashed());
  EXPECT_TRUE(std::filesystem::exists(a));
  EXPECT_FALSE(std::filesystem::exists(b));
  // Post-crash mutations are silent no-ops: the on-disk state is frozen.
  const int fd = vfs::open(a, O_WRONLY | O_APPEND);
  ASSERT_GE(fd, 0);
  EXPECT_EQ(vfs::write(fd, a, "MORE", 4), 4);
  vfs::close(fd);
  EXPECT_EQ(std::filesystem::file_size(a), 4u) << "write reached a frozen disk";
  inj.disarm_all();
  EXPECT_FALSE(inj.crashed());
}

// ---- degradation under injected disk failure ----

// A journaling server whose disk dies mid-burst (every write ENOSPC, every
// fsync EIO) must fail-stop the journal, keep computing, answer >= 95% of the
// burst successfully, shed require_durable work retryably, report durable=0,
// and count it all — no crash, no hang, no silent loss.
TEST(StorageTest, DiskFailureMidBurstDegradesGracefully) {
  TempDir data;
  testkit::ClusterConfig config;
  config.rating_base = 500.0;
  testkit::ClusterServerSpec spec;
  spec.name = "server0";
  spec.workers = 2;
  spec.slowdown_mode = server::SlowdownMode::kSleep;
  spec.data_dir = data.path;
  spec.journal_fsync = true;  // the EIO path needs real fdatasync calls
  config.servers = {spec};
  config.io_timeout_s = 30.0;
  auto cluster = testkit::TestCluster::start(config);
  ASSERT_TRUE(cluster.ok()) << cluster.error().to_string();
  auto& server = cluster.value()->server(0);

  const auto errors_before = metrics::counter("store.write_errors_total").value();

  auto client = cluster.value()->make_client();
  constexpr int kJobs = 40;
  int ok = 0;
  std::vector<client::RequestHandle> handles;
  for (int i = 0; i < kJobs; ++i) {
    if (i == 8) {
      // The disk dies under the burst: everything the journal writes or
      // flushes from now on fails.
      vfs::StorageFaultPlan plan;
      plan.rules.push_back({vfs::StorageFaultMode::kEnospc, 1.0, -1});
      plan.rules.push_back({vfs::StorageFaultMode::kFsyncEio, 1.0, -1});
      cluster.value()->arm_storage_fault(0, plan);
    }
    handles.push_back(client.netsl_nb("simwork", {DataObject(std::int64_t{5})}));
  }
  for (auto& handle : handles) {
    if (handle.wait().ok()) ++ok;
  }
  EXPECT_GE(ok, (kJobs * 95) / 100)
      << "goodput under disk failure fell below 95%: " << ok << "/" << kJobs;

  // The server degraded: journal fail-stopped, counters ticked, flag up.
  ASSERT_TRUE(eventually([&] { return server.durability_degraded(); }, 5.0))
      << "server never entered degraded mode";
  EXPECT_GT(metrics::counter("store.write_errors_total").value(), errors_before);
  EXPECT_EQ(metrics::gauge("store.server0.degraded").value(), 1.0);

  // The agent hears durable=0 in the next workload report and a
  // durable-required request is shed retryably, not accepted silently.
  const auto shed_before = metrics::counter("store.degraded_shed_total").value();
  {
    client::ClientConfig cc;
    cc.agents = {cluster.value()->agent_endpoint()};
    cc.io_timeout_s = 10.0;
    cc.require_durable = true;
    cc.max_retries = 1;  // one attempt: we want to see the shed, not a retry
    client::NetSolveClient durable_client(cc);
    auto result = durable_client.netsl("simwork", {DataObject(std::int64_t{1})});
    EXPECT_FALSE(result.ok());
  }
  EXPECT_GT(metrics::counter("store.degraded_shed_total").value(), shed_before);

  // The degraded server still solves non-durable work fine.
  auto after = client.netsl("simwork", {DataObject(std::int64_t{1})});
  EXPECT_TRUE(after.ok()) << (after.ok() ? "" : after.error().to_string());

  cluster.value()->disarm_storage_faults();
}

// ---- crash-time failover via replicated checkpoints ----

// server1 replicates its checkpoints to server0. server1 is crashed (kill -9
// shaped, no drain) mid-iterative-solve; the client's reattach fails (the
// server stays dead), its checkpoint-failover path asks the surviving
// candidates, server0 adopts from the last replicated snapshot, and the job
// completes having recomputed at most ~one checkpoint interval.
TEST(StorageTest, CrashFailoverResumesOnReplicaFromReplicatedCheckpoint) {
  testkit::ClusterConfig config;
  config.rating_base = 500.0;
  testkit::ClusterServerSpec replica;
  replica.name = "server0";  // must start before the replicating server
  replica.workers = 2;
  replica.slowdown_mode = server::SlowdownMode::kSleep;
  testkit::ClusterServerSpec origin = replica;
  origin.name = "server1";
  origin.replicas = {0};
  origin.checkpoint_interval = 25;
  config.servers = {replica, origin};
  config.io_timeout_s = 60.0;
  config.client_reattach_s = 1.0;  // fail fast: the server will stay dead
  config.client_checkpoint_failover = true;
  auto cluster = testkit::TestCluster::start(config);
  ASSERT_TRUE(cluster.ok()) << cluster.error().to_string();
  const net::Endpoint origin_ep = cluster.value()->server(1).endpoint();

  const auto replicated_before = metrics::counter("store.ckpt_replicated_total").value();
  const auto failover_before = metrics::counter("store.failover_resume_total").value();

  // Submit the long job straight at server1 through the cluster client: pin
  // placement by talking to a one-candidate agent view is racy, so instead
  // submit raw to server1 and reattach/fail over via a scripted client.
  client::ClientConfig cc;
  cc.agents = {cluster.value()->agent_endpoint()};
  cc.io_timeout_s = 60.0;
  cc.reattach_s = 1.0;
  cc.checkpoint_failover = true;
  // simwork(800) at rating 500 = ~1.6 s of checkpointable sleep.

  // Drive the solve directly against server1 so the crash provably hits the
  // job's owner (the agent could have ranked server0 first).
  auto conn = net::TcpConnection::connect(origin_ep);
  ASSERT_TRUE(conn.ok()) << conn.error().to_string();
  proto::SolveRequest req;
  req.request_id = 7001;
  req.problem = "simwork";
  req.args = {DataObject(std::int64_t{800})};
  {
    serial::Encoder enc;
    req.encode(enc);
    ASSERT_TRUE(net::send_message(
                    conn.value(),
                    static_cast<std::uint16_t>(proto::MessageType::kSolveRequest),
                    enc.take())
                    .ok());
  }

  // Wait until at least two checkpoints replicated to server0 and the job is
  // past 40% (so a from-scratch restart would be detectable).
  ASSERT_TRUE(eventually(
      [&] {
        return metrics::counter("store.ckpt_replicated_total").value() >=
                   replicated_before + 2 &&
               cluster.value()->server(0).replica_holds() >= 1;
      },
      20.0))
      << "checkpoints never replicated to the peer";
  std::uint64_t crash_iteration = 0;
  ASSERT_TRUE(eventually(
      [&] {
        auto probe = client::probe_request(origin_ep, 7001);
        if (!probe.ok()) return false;
        crash_iteration = probe.value().iteration;
        return crash_iteration >= 320;  // 40% of 800
      },
      20.0))
      << "job never reached 40% before the crash";

  // Unclean crash of the job's owner — no drain, no migration, no flush.
  cluster.value()->crash_server(1);

  // The client-side failover: reattach to the dead server fails, then a
  // CHECKPOINT_FETCH(adopt) lands on server0, which resumes the job.
  proto::CheckpointFetch fetch;
  fetch.request_id = 7001;
  fetch.adopt = true;
  serial::Bytes fetch_payload;
  {
    serial::Encoder enc;
    fetch.encode(enc);
    fetch_payload = enc.take();
  }
  auto adopt_conn = net::TcpConnection::connect(cluster.value()->server(0).endpoint());
  ASSERT_TRUE(adopt_conn.ok()) << adopt_conn.error().to_string();
  ASSERT_TRUE(net::send_message(
                  adopt_conn.value(),
                  static_cast<std::uint16_t>(proto::MessageType::kCheckpointFetch),
                  fetch_payload)
                  .ok());
  auto adopt_reply = net::recv_message(adopt_conn.value(), 10.0);
  ASSERT_TRUE(adopt_reply.ok()) << adopt_reply.error().to_string();
  serial::Decoder dec(adopt_reply.value().payload);
  auto adopted = proto::CheckpointFetchReply::decode(dec);
  ASSERT_TRUE(adopted.ok()) << adopted.error().to_string();
  ASSERT_TRUE(adopted.value().found);
  ASSERT_TRUE(adopted.value().adopted) << "replica refused to adopt";
  // The adopted snapshot trails the live iteration by at most ~one
  // checkpoint interval (25) plus one in-flight snapshot.
  EXPECT_GE(adopted.value().iteration + 2 * origin.checkpoint_interval,
            crash_iteration)
      << "replicated snapshot lagged more than a checkpoint interval";

  // The job completes on the replica, resumed mid-stream.
  auto result = client::wait_for_job(cluster.value()->server(0).endpoint(), 7001,
                                     /*budget_s=*/30.0);
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  EXPECT_EQ(result.value().error_code, 0u) << result.value().error_message;
  EXPECT_EQ(cluster.value()->server(0).failover_resumes(), 1u);
  EXPECT_GE(cluster.value()->server(0).last_resume_iteration(),
            crash_iteration > 2 * origin.checkpoint_interval
                ? crash_iteration - 2 * origin.checkpoint_interval
                : 1u)
      << "replica restarted from (near) scratch";
  EXPECT_GT(metrics::counter("store.failover_resume_total").value(), failover_before);

  // Wire accounting ticked on both sides. (No ratio assertion here:
  // simwork's snapshots are a few bytes, so frame headers dominate — the
  // compression win is measured on real-sized states in bench_fault.)
  EXPECT_GT(metrics::counter("store.ckpt_raw_bytes_total").value(), 0u);
  EXPECT_GT(metrics::counter("store.ckpt_wire_bytes_total").value(), 0u);
}

// End-to-end: the *client* performs the failover on its own (no hand-rolled
// FETCH) when the server it was attached to dies mid-call.
TEST(StorageTest, ClientFailoverChasesReplicaAutomatically) {
  testkit::ClusterConfig config;
  config.rating_base = 500.0;
  testkit::ClusterServerSpec replica;
  replica.name = "server0";
  replica.workers = 2;
  replica.slowdown_mode = server::SlowdownMode::kSleep;
  // Make server0 look slow to the agent so the ranked list puts server1
  // (full speed) first and the client's call lands on the replicating
  // server; server0 stays in the candidate list for the failover walk.
  replica.speed = 0.25;
  testkit::ClusterServerSpec origin = replica;
  origin.name = "server1";
  origin.speed = 1.0;
  origin.replicas = {0};
  config.servers = {replica, origin};
  config.io_timeout_s = 60.0;
  config.client_reattach_s = 1.0;
  config.client_checkpoint_failover = true;
  auto cluster = testkit::TestCluster::start(config);
  ASSERT_TRUE(cluster.ok()) << cluster.error().to_string();

  const auto adopt_before = metrics::counter("client.failover_adopt_total").value();
  const auto replicated_before = metrics::counter("store.ckpt_replicated_total").value();

  auto client = cluster.value()->make_client();
  auto handle = client.netsl_nb("simwork", {DataObject(std::int64_t{600})});

  // Wait for the job to land on server1 (the fast one) and replicate.
  const bool on_origin = eventually(
      [&] {
        return metrics::counter("store.ckpt_replicated_total").value() >=
               replicated_before + 1;
      },
      20.0);
  if (!on_origin) {
    // The agent placed the job on server0 after all (host-speed noise);
    // nothing to fail over — the call just completes there. Don't fail the
    // test on scheduler nondeterminism; the previous test pins the
    // failover mechanics deterministically.
    auto out = handle.wait();
    EXPECT_TRUE(out.ok());
    return;
  }
  cluster.value()->crash_server(1);

  auto out = handle.wait();
  ASSERT_TRUE(out.ok()) << out.error().to_string();
  EXPECT_GT(metrics::counter("client.failover_adopt_total").value(), adopt_before)
      << "client completed without the failover path";
  EXPECT_GE(cluster.value()->server(0).failover_resumes(), 1u);
}

}  // namespace
}  // namespace ns
