// Tail-latency armor: hedged requests, cross-server cancellation, and
// graceful drain. These tests pin the full loop — a straggling primary
// triggers a backup attempt, the fast replica wins, the loser is actively
// cancelled on its server (not silently abandoned), and a draining server
// finishes its queue, turns away new work, and disappears from the agent's
// directory without losing a single job.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "client/client.hpp"
#include "common/clock.hpp"
#include "common/metrics.hpp"
#include "net/transport.hpp"
#include "proto/messages.hpp"
#include "testkit/cluster.hpp"

namespace ns {
namespace {

using dsl::DataObject;

// Poll `pred` until it holds or `timeout_s` lapses.
template <typename Pred>
bool eventually(Pred pred, double timeout_s = 5.0) {
  const Deadline deadline(timeout_s);
  while (!deadline.expired()) {
    if (pred()) return true;
    sleep_seconds(0.005);
  }
  return pred();
}

serial::Bytes encode_solve(std::uint64_t request_id, std::int64_t mflop) {
  proto::SolveRequest msg;
  msg.request_id = request_id;
  msg.problem = "simwork";
  msg.args = {DataObject(mflop)};
  serial::Encoder enc;
  msg.encode(enc);
  return enc.take();
}

Result<proto::SolveResult> recv_solve_result(net::TcpConnection& conn, double timeout_s) {
  auto reply = net::recv_message(conn, timeout_s);
  NS_RETURN_IF_ERROR(reply);
  if (reply.value().type != static_cast<std::uint16_t>(proto::MessageType::kSolveResult)) {
    return make_error(ErrorCode::kProtocol, "expected SOLVE_RESULT");
  }
  serial::Decoder dec(reply.value().payload);
  return proto::SolveResult::decode(dec);
}

// A stalled primary: server0 is the agent's clear first pick (full speed vs
// half speed), but a background-load spike stretches its service time far
// past the hedge delay. The backup launched on server1 must win, the call
// must succeed fast, and the loser on server0 must be observed *cancelled*,
// never completed.
TEST(HedgeTest, BackupWinsAndLoserIsCancelled) {
  testkit::ClusterConfig config;
  config.rating_base = 500.0;
  testkit::ClusterServerSpec fast;
  fast.name = "server0";
  fast.speed = 1.0;
  fast.slowdown_mode = server::SlowdownMode::kSleep;
  fast.report_period_s = 30.0;  // freeze the ranking at the initial report
  testkit::ClusterServerSpec slow = fast;
  slow.name = "server1";
  slow.speed = 0.5;
  config.servers = {fast, slow};
  config.io_timeout_s = 10.0;
  // Static hedge delay: min_samples is unreachable on purpose so a warmed
  // process-global latency histogram from earlier tests cannot perturb it.
  config.client_hedge_delay_s = 0.15;
  config.client_hedge_min_samples = ~0ull;

  auto cluster = testkit::TestCluster::start(config);
  ASSERT_TRUE(cluster.ok()) << cluster.error().to_string();

  // The agent still believes server0 is idle and fast; in reality the load
  // spike stretches simwork(25) from ~50 ms to ~2.5 s of cancellable work.
  cluster.value()->server(0).set_background_load(50.0);

  const auto hedges_before = metrics::counter("client.hedge_total").value();
  const auto wins_before = metrics::counter("client.hedge_wins_total").value();
  const auto cancels_before = metrics::counter("client.cancel_sent_total").value();

  auto client = cluster.value()->make_client();
  client::CallStats stats;
  const Stopwatch watch;
  auto out = client.netsl("simwork", {DataObject(std::int64_t{25})}, &stats);
  const double elapsed = watch.elapsed();
  ASSERT_TRUE(out.ok()) << out.error().to_string();

  // The backup fired, won on the half-speed replica, and beat the stall.
  EXPECT_TRUE(stats.hedged);
  EXPECT_EQ(stats.server_name, "server1");
  EXPECT_LT(elapsed, 2.0) << "hedge did not rescue the call from the straggler";
  EXPECT_GE(metrics::counter("client.hedge_total").value(), hedges_before + 1);
  EXPECT_GE(metrics::counter("client.hedge_wins_total").value(), wins_before + 1);
  EXPECT_GE(metrics::counter("client.cancel_sent_total").value(), cancels_before + 1);

  // The loser is reaped, not leaked: server0 observes the CANCEL and unwinds
  // mid-compute. It must not also count the job as completed.
  EXPECT_TRUE(eventually(
      [&] { return cluster.value()->server(0).cancelled_running() >= 1; }))
      << "loser was never cancelled on server0";
  EXPECT_EQ(cluster.value()->server(0).completed(), 0u);

  auto snap = cluster.value()->scrape_server_metrics(0, "server.");
  ASSERT_TRUE(snap.ok()) << snap.error().to_string();
  const auto* cancelled = snap.value().find("server.cancelled_running_total");
  ASSERT_NE(cancelled, nullptr);
  EXPECT_GE(cancelled->count, 1u);
}

// Cross-server cancellation at both lifecycle stages, over raw connections
// so the request ids are chosen by the test: a queued job is dropped before
// any compute happens, a running job unwinds at a cancellation checkpoint,
// and both report kCancelled to their (still-waiting) callers.
TEST(HedgeTest, CancelQueuedAndRunningJobs) {
  testkit::ClusterConfig config;
  config.rating_base = 500.0;
  testkit::ClusterServerSpec spec;
  spec.name = "server0";
  spec.workers = 1;  // one running slot; the second job must queue
  spec.slowdown_mode = server::SlowdownMode::kSleep;
  config.servers = {spec};
  config.io_timeout_s = 10.0;
  auto cluster = testkit::TestCluster::start(config);
  ASSERT_TRUE(cluster.ok()) << cluster.error().to_string();
  auto& server = cluster.value()->server(0);
  const net::Endpoint endpoint = server.endpoint();

  // Job A occupies the single worker (~2 s of sliced, cancellable sleep).
  auto conn_a = net::TcpConnection::connect(endpoint);
  ASSERT_TRUE(conn_a.ok()) << conn_a.error().to_string();
  ASSERT_TRUE(net::send_message(conn_a.value(),
                                static_cast<std::uint16_t>(proto::MessageType::kSolveRequest),
                                encode_solve(1001, 1000))
                  .ok());
  sleep_seconds(0.3);  // let A reach the worker before B arrives

  auto conn_b = net::TcpConnection::connect(endpoint);
  ASSERT_TRUE(conn_b.ok()) << conn_b.error().to_string();
  ASSERT_TRUE(net::send_message(conn_b.value(),
                                static_cast<std::uint16_t>(proto::MessageType::kSolveRequest),
                                encode_solve(1002, 1000))
                  .ok());
  sleep_seconds(0.2);  // let B land in the queue

  // Cancelling an id the server never saw is a clean no-op ack.
  auto unknown = client::cancel_request(endpoint, 4242);
  ASSERT_TRUE(unknown.ok()) << unknown.error().to_string();
  EXPECT_EQ(unknown.value().outcome, proto::CancelOutcome::kCompleted);

  // B is still queued: it must be dropped without ever running.
  auto ack_b = client::cancel_request(endpoint, 1002);
  ASSERT_TRUE(ack_b.ok()) << ack_b.error().to_string();
  EXPECT_EQ(ack_b.value().outcome, proto::CancelOutcome::kQueued);
  auto result_b = recv_solve_result(conn_b.value(), 10.0);
  ASSERT_TRUE(result_b.ok()) << result_b.error().to_string();
  EXPECT_EQ(static_cast<ErrorCode>(result_b.value().error_code), ErrorCode::kCancelled);
  EXPECT_TRUE(eventually([&] { return server.cancelled_queued() == 1; }));

  // A is mid-compute: the kernel unwinds at its next checkpoint.
  auto ack_a = client::cancel_request(endpoint, 1001);
  ASSERT_TRUE(ack_a.ok()) << ack_a.error().to_string();
  EXPECT_EQ(ack_a.value().outcome, proto::CancelOutcome::kRunning);
  auto result_a = recv_solve_result(conn_a.value(), 10.0);
  ASSERT_TRUE(result_a.ok()) << result_a.error().to_string();
  EXPECT_EQ(static_cast<ErrorCode>(result_a.value().error_code), ErrorCode::kCancelled);
  EXPECT_TRUE(eventually([&] { return server.cancelled_running() == 1; }));

  // Nothing completed, nothing double-counted as shed.
  EXPECT_EQ(server.completed(), 0u);
  EXPECT_EQ(server.shed(), 0u);
}

// Graceful drain under load: every in-flight and queued job still succeeds
// (finished locally or retried elsewhere), the drained server admits nothing
// new, and the agent stops routing to it the moment it deregisters.
TEST(HedgeTest, DrainUnderLoadLosesNoJobs) {
  testkit::ClusterConfig config;
  config.rating_base = 500.0;
  config.servers = testkit::uniform_pool(2, /*workers=*/2);
  for (auto& spec : config.servers) spec.slowdown_mode = server::SlowdownMode::kSleep;
  config.io_timeout_s = 10.0;
  // Drain-rejected work is retryable; give the client budget to fail over.
  config.client_deadline_s = 20.0;
  auto cluster = testkit::TestCluster::start(config);
  ASSERT_TRUE(cluster.ok()) << cluster.error().to_string();

  auto client = cluster.value()->make_client();
  std::vector<client::RequestHandle> handles;
  for (int i = 0; i < 12; ++i) {
    handles.push_back(client.netsl_nb("simwork", {DataObject(std::int64_t{50})}));
  }

  // Drain server0 while the burst is in flight.
  auto ack = cluster.value()->drain_server(0, /*deadline_s=*/5.0);
  ASSERT_TRUE(ack.ok()) << ack.error().to_string();
  EXPECT_TRUE(ack.value().started);

  // Zero lost jobs: every call succeeds, on whichever server.
  for (auto& handle : handles) {
    auto out = handle.wait();
    EXPECT_TRUE(out.ok()) << out.error().to_string();
  }
  EXPECT_TRUE(eventually([&] { return cluster.value()->server(0).drained(); }, 10.0));

  // The agent's directory reflects the deregistration.
  EXPECT_TRUE(eventually([&] {
    for (const auto& record : cluster.value()->agent().registry().all()) {
      if (record.name == "server0") return !record.alive;
    }
    return false;
  })) << "agent still considers server0 alive after drain";

  // Zero new admissions: a direct request bounces with a retryable error.
  auto conn = net::TcpConnection::connect(cluster.value()->server(0).endpoint());
  ASSERT_TRUE(conn.ok()) << conn.error().to_string();
  ASSERT_TRUE(net::send_message(conn.value(),
                                static_cast<std::uint16_t>(proto::MessageType::kSolveRequest),
                                encode_solve(7001, 10))
                  .ok());
  auto rejected = recv_solve_result(conn.value(), 10.0);
  ASSERT_TRUE(rejected.ok()) << rejected.error().to_string();
  EXPECT_EQ(static_cast<ErrorCode>(rejected.value().error_code),
            ErrorCode::kServerOverloaded);
  EXPECT_GE(cluster.value()->server(0).drain_rejected(), 1u);

  // New traffic lands on the survivor.
  client::CallStats stats;
  auto out = client.netsl("simwork", {DataObject(std::int64_t{10})}, &stats);
  ASSERT_TRUE(out.ok()) << out.error().to_string();
  EXPECT_EQ(stats.server_name, "server1");
}

}  // namespace
}  // namespace ns
