// Tests for the C client binding — the paper's C interface, exercised as a
// C caller would (descriptor structs, opaque handles, error codes).
#include <gtest/gtest.h>

#include "client/netsolve_c.h"
#include "common/clock.hpp"
#include "linalg/blas.hpp"
#include "testkit/cluster.hpp"

namespace ns {
namespace {

class CApiTest : public ::testing::Test {
 protected:
  void SetUp() override {
    testkit::ClusterConfig config;
    config.servers = testkit::uniform_pool(2);
    config.rating_base = 500.0;
    auto cluster = testkit::TestCluster::start(std::move(config));
    ASSERT_TRUE(cluster.ok());
    cluster_ = std::move(cluster).value();
    session_ = ns_connect("127.0.0.1", cluster_->agent_endpoint().port);
    ASSERT_NE(session_, nullptr);
  }

  void TearDown() override {
    ns_disconnect(session_);
    session_ = nullptr;
  }

  std::unique_ptr<testkit::TestCluster> cluster_;
  ns_session* session_ = nullptr;
};

TEST_F(CApiTest, ConnectFailsForDeadAgent) {
  EXPECT_EQ(ns_connect("127.0.0.1", 1), nullptr);
  EXPECT_EQ(ns_connect(nullptr, 1), nullptr);
}

TEST_F(CApiTest, ProblemCount) {
  const int count = ns_problem_count(session_);
  EXPECT_GE(count, 20);
}

TEST_F(CApiTest, BlockingDgesv) {
  // 3x3 diagonally dominant system with known solution x = (1, 2, 3).
  const double a_data[9] = {10, 1, 0,   // column 0
                            1, 10, 1,   // column 1
                            0, 1, 10};  // column 2
  const double x_true[3] = {1, 2, 3};
  double b_data[3];
  for (int i = 0; i < 3; ++i) {
    b_data[i] = 0;
    for (int j = 0; j < 3; ++j) b_data[i] += a_data[j * 3 + i] * x_true[j];
  }

  ns_arg inputs[2] = {};
  inputs[0].type = NS_ARG_MATRIX;
  inputs[0].data = a_data;
  inputs[0].rows = 3;
  inputs[0].cols = 3;
  inputs[1].type = NS_ARG_VECTOR;
  inputs[1].data = b_data;
  inputs[1].len = 3;

  ns_arg outputs[1] = {};
  outputs[0].type = NS_ARG_VECTOR;

  ASSERT_EQ(netsl(session_, "dgesv", inputs, 2, outputs, 1), NS_OK)
      << ns_last_error(session_);
  ASSERT_EQ(outputs[0].len, 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_NEAR(outputs[0].out_data[i], x_true[i], 1e-10);
  }
}

TEST_F(CApiTest, ScalarInputsAndOutputs) {
  const double x[3] = {1, 2, 3};
  const double y[3] = {4, 5, 6};
  ns_arg inputs[2] = {};
  inputs[0].type = NS_ARG_VECTOR;
  inputs[0].data = x;
  inputs[0].len = 3;
  inputs[1].type = NS_ARG_VECTOR;
  inputs[1].data = y;
  inputs[1].len = 3;
  ns_arg output = {};
  output.type = NS_ARG_DOUBLE;
  ASSERT_EQ(netsl(session_, "ddot", inputs, 2, &output, 1), NS_OK);
  EXPECT_DOUBLE_EQ(output.double_value, 32.0);
}

TEST_F(CApiTest, MatrixOutput) {
  const double a[4] = {1, 0, 0, 1};  // identity
  ns_arg inputs[2] = {};
  inputs[0].type = NS_ARG_MATRIX;
  inputs[0].data = a;
  inputs[0].rows = 2;
  inputs[0].cols = 2;
  inputs[1] = inputs[0];
  ns_arg output = {};
  output.type = NS_ARG_MATRIX;
  ASSERT_EQ(netsl(session_, "dgemm", inputs, 2, &output, 1), NS_OK);
  ASSERT_EQ(output.rows, 2u);
  ASSERT_EQ(output.cols, 2u);
  EXPECT_DOUBLE_EQ(output.out_data[0], 1.0);
  EXPECT_DOUBLE_EQ(output.out_data[1], 0.0);
  EXPECT_DOUBLE_EQ(output.out_data[3], 1.0);
}

TEST_F(CApiTest, ErrorCodesMapped) {
  ns_arg output = {};
  output.type = NS_ARG_DOUBLE;
  EXPECT_EQ(netsl(session_, "no_such_problem", nullptr, 0, &output, 1),
            NS_ERR_UNKNOWN_PROBLEM);
  EXPECT_NE(std::string(ns_last_error(session_)).size(), 0u);

  // Wrong argument types reach the server's validation.
  ns_arg bad = {};
  bad.type = NS_ARG_DOUBLE;
  bad.double_value = 1.0;
  EXPECT_EQ(netsl(session_, "dgesv", &bad, 1, &output, 1), NS_ERR_BAD_ARGUMENTS);

  // Output arity mismatch detected locally.
  const double x[2] = {1, 2};
  ns_arg vec = {};
  vec.type = NS_ARG_VECTOR;
  vec.data = x;
  vec.len = 2;
  ns_arg ins[2] = {vec, vec};
  ns_arg outs[3] = {};
  EXPECT_EQ(netsl(session_, "ddot", ins, 2, outs, 3), NS_ERR_BAD_ARGUMENTS);
}

TEST_F(CApiTest, NullDataRejected) {
  ns_arg bad = {};
  bad.type = NS_ARG_MATRIX;
  bad.rows = 2;
  bad.cols = 2;  // data == nullptr
  ns_arg output = {};
  output.type = NS_ARG_VECTOR;
  EXPECT_EQ(netsl(session_, "dgesv", &bad, 1, &output, 1), NS_ERR_BAD_ARGUMENTS);
}

TEST_F(CApiTest, NonBlockingProbeWait) {
  ns_arg input = {};
  input.type = NS_ARG_INT;
  input.int_value = 20;  // ~40ms busywork at rating 500
  ns_request* request = netsl_nb(session_, "busywork", &input, 1);
  ASSERT_NE(request, nullptr);

  // Probe until ready.
  const Deadline deadline(10.0);
  while (netsl_probe(request) == NS_ERR_NOT_READY && !deadline.expired()) {
    sleep_seconds(0.005);
  }
  EXPECT_EQ(netsl_probe(request), NS_OK);

  ns_arg output = {};
  output.type = NS_ARG_INT;
  ASSERT_EQ(netsl_wait(request, &output, 1), NS_OK);
  EXPECT_EQ(output.int_value, 20);
  ns_request_free(request);
}

TEST_F(CApiTest, ManyConcurrentNonBlocking) {
  constexpr int kRequests = 8;
  ns_request* requests[kRequests];
  ns_arg input = {};
  input.type = NS_ARG_INT;
  input.int_value = 5;
  for (auto*& r : requests) {
    r = netsl_nb(session_, "busywork", &input, 1);
    ASSERT_NE(r, nullptr);
  }
  for (auto* r : requests) {
    ns_arg output = {};
    output.type = NS_ARG_INT;
    EXPECT_EQ(netsl_wait(r, &output, 1), NS_OK);
    ns_request_free(r);
  }
}

TEST_F(CApiTest, OutputBuffersSurviveUntilNextCall) {
  const double x[2] = {3, 4};
  ns_arg ins[2] = {};
  ins[0].type = NS_ARG_VECTOR;
  ins[0].data = x;
  ins[0].len = 2;
  ins[1] = ins[0];
  ns_arg out1 = {};
  out1.type = NS_ARG_VECTOR;
  ASSERT_EQ(netsl(session_, "daxpy", nullptr, 0, nullptr, 0), NS_ERR_BAD_ARGUMENTS);
  ASSERT_EQ(netsl(session_, "convolve", ins, 2, &out1, 1), NS_OK);
  // [3,4]*[3,4] = [9, 24, 16]
  ASSERT_EQ(out1.len, 3u);
  EXPECT_DOUBLE_EQ(out1.out_data[0], 9.0);
  EXPECT_DOUBLE_EQ(out1.out_data[1], 24.0);
  EXPECT_DOUBLE_EQ(out1.out_data[2], 16.0);
}

}  // namespace
}  // namespace ns
