// Durable jobs: write-ahead journal, iteration-granular checkpoint/restart,
// and live migration on drain. These tests pin the full story — a server
// SIGKILLed (in-process: crash()) with queued and running jobs restarts,
// replays its journal, resumes solves from their last checkpoint (not from
// scratch), and finishes every job without the clients resubmitting; a
// draining server hands its running jobs (checkpoints included) to a peer
// with zero losses; and the journal replay itself survives torn tails,
// flipped bits, and duplicate terminal records without ever re-running a
// completed job.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "client/client.hpp"
#include "common/clock.hpp"
#include "common/metrics.hpp"
#include "net/transport.hpp"
#include "proto/messages.hpp"
#include "server/journal.hpp"
#include "testkit/cluster.hpp"

namespace ns {
namespace {

using dsl::DataObject;

// Poll `pred` until it holds or `timeout_s` lapses.
template <typename Pred>
bool eventually(Pred pred, double timeout_s = 5.0) {
  const Deadline deadline(timeout_s);
  while (!deadline.expired()) {
    if (pred()) return true;
    sleep_seconds(0.005);
  }
  return pred();
}

serial::Bytes encode_solve(std::uint64_t request_id, std::int64_t mflop) {
  proto::SolveRequest msg;
  msg.request_id = request_id;
  msg.problem = "simwork";
  msg.args = {DataObject(mflop)};
  serial::Encoder enc;
  msg.encode(enc);
  return enc.take();
}

Status send_solve(net::TcpConnection& conn, std::uint64_t request_id, std::int64_t mflop) {
  return net::send_message(conn,
                           static_cast<std::uint16_t>(proto::MessageType::kSolveRequest),
                           encode_solve(request_id, mflop));
}

// A scratch data directory, removed on scope exit. NS_DURABLE_TMPDIR
// redirects it onto another filesystem — CI mounts a small tmpfs there so
// journal writes can hit a real (not injected) ENOSPC.
struct TempDir {
  std::string path;
  TempDir() {
    const char* base = std::getenv("NS_DURABLE_TMPDIR");
    std::string tmpl_s =
        std::string(base != nullptr && *base != '\0' ? base : "/tmp") + "/ns_durable_XXXXXX";
    std::vector<char> tmpl(tmpl_s.begin(), tmpl_s.end());
    tmpl.push_back('\0');
    const char* made = ::mkdtemp(tmpl.data());
    path = made != nullptr ? made : "/tmp/ns_durable_fallback";
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

std::uint64_t probed_iteration(const net::Endpoint& peer, std::uint64_t id) {
  auto reply = client::probe_request(peer, id);
  if (!reply.ok()) return 0;
  return reply.value().iteration;
}

// ---- tentpole: crash, replay, resume from checkpoint ----

// A journaling server is killed uncleanly with two running jobs (mid-solve,
// checkpoints on disk) and one queued job, plus one job submitted through a
// reattaching client. After restart every job completes without any client
// resubmitting, and the running jobs resume >= 50% through — asserted via
// the server's resume-iteration counter (simwork's iteration unit is whole
// Mflop completed).
TEST(DurableTest, CrashRecoveryCompletesAllJobsFromCheckpoint) {
  TempDir data;
  testkit::ClusterConfig config;
  config.rating_base = 500.0;
  testkit::ClusterServerSpec spec;
  spec.name = "server0";
  spec.workers = 2;  // two running slots; the later jobs must queue
  spec.slowdown_mode = server::SlowdownMode::kSleep;
  spec.data_dir = data.path;
  config.servers = {spec};
  config.io_timeout_s = 30.0;
  config.client_reattach_s = 20.0;  // reattach instead of resubmitting
  auto cluster = testkit::TestCluster::start(config);
  ASSERT_TRUE(cluster.ok()) << cluster.error().to_string();
  const net::Endpoint endpoint = cluster.value()->server(0).endpoint();

  const auto recovered_before = metrics::counter("server.jobs_recovered_total").value();
  const auto appends_before = metrics::counter("server.journal_appends_total").value();

  // Two raw long jobs occupy both workers (simwork(1000) at rating 500 =
  // ~2 s of sliced, checkpointable sleep; one checkpoint every 25 Mflop).
  auto conn_a = net::TcpConnection::connect(endpoint);
  ASSERT_TRUE(conn_a.ok()) << conn_a.error().to_string();
  ASSERT_TRUE(send_solve(conn_a.value(), 2001, 1000).ok());
  auto conn_b = net::TcpConnection::connect(endpoint);
  ASSERT_TRUE(conn_b.ok()) << conn_b.error().to_string();
  ASSERT_TRUE(send_solve(conn_b.value(), 2002, 1000).ok());

  // Both raw jobs must hold the two worker slots before anything else is
  // submitted — on a loaded host the second connection's enqueue can lose a
  // FIFO race against a later arrival, which would then run (and finish)
  // before the crash instead of queueing behind the pair.
  ASSERT_TRUE(eventually(
      [&] {
        return probed_iteration(endpoint, 2001) >= 1 &&
               probed_iteration(endpoint, 2002) >= 1;
      },
      10.0))
      << "the raw pair never occupied both workers";

  // A third job through the client: it queues behind A and B, and its
  // transport will die with the crash — the reattach path must finish it.
  auto client = cluster.value()->make_client();
  auto handle = client.netsl_nb("simwork", {DataObject(std::int64_t{200})});

  // Hold the crash until (a) the client's job has actually been admitted —
  // under a loaded host its submission can lag, and only journaled jobs
  // recover — and (b) both running jobs are past 60%, so their last on-disk
  // checkpoint is comfortably past the 50% mark (snapshot lag is < one
  // 25-Mflop interval).
  ASSERT_TRUE(eventually(
      [&] { return cluster.value()->server(0).current_workload() >= 3.0; }, 10.0))
      << "the queued client job never reached the server before the crash";
  ASSERT_TRUE(eventually(
      [&] {
        return probed_iteration(endpoint, 2001) >= 600 &&
               probed_iteration(endpoint, 2002) >= 600;
      },
      10.0))
      << "jobs never reached 60% before the crash";

  // Unclean death: journal fd dropped cold, kernels abandoned, no terminal
  // records, no compaction. Then a new incarnation on the same endpoint.
  cluster.value()->crash_server(0);
  ASSERT_TRUE(cluster.value()->restart_server(0).ok());
  auto& revived = cluster.value()->server(0);

  // Replay re-admitted all three jobs (none had completed).
  EXPECT_EQ(revived.jobs_recovered(), 3u);
  EXPECT_EQ(metrics::counter("server.jobs_recovered_total").value() - recovered_before,
            revived.jobs_recovered());

  // Every job completes on the new incarnation without resubmission: the raw
  // submissions reattach via PROBE/WAIT, the client call reattaches itself.
  for (const std::uint64_t id : {2001ull, 2002ull}) {
    auto result = client::wait_for_job(endpoint, id, /*budget_s=*/30.0);
    ASSERT_TRUE(result.ok()) << "job " << id << ": " << result.error().to_string();
    EXPECT_EQ(result.value().error_code, 0u) << result.value().error_message;
  }
  client::CallStats stats;
  auto out = handle.wait();
  ASSERT_TRUE(out.ok()) << out.error().to_string();

  // The running pair resumed from their checkpoints — at least half the work
  // was already banked, and none of it restarted from scratch.
  EXPECT_EQ(revived.jobs_resumed(), 2u);
  EXPECT_GE(revived.last_resume_iteration(), 500u)
      << "resume point was before the 50% mark";

  // Journal bookkeeping agrees with what we watched happen.
  EXPECT_GT(revived.journal_appends(), 0u);
  EXPECT_GT(metrics::counter("server.journal_appends_total").value(), appends_before);
  auto snap = cluster.value()->scrape_server_metrics(0, "server.");
  ASSERT_TRUE(snap.ok()) << snap.error().to_string();
  const auto* recovered = snap.value().find("server.jobs_recovered_total");
  ASSERT_NE(recovered, nullptr);
  EXPECT_GE(recovered->count, 3u);
}

// ---- tentpole: live migration on drain ----

// Draining a server under load with migrate_on_drain hands every running job
// (with its checkpoint) to the surviving peer: zero lost jobs, zero
// from-scratch restarts, and the original submitter follows the MIGRATED
// forwarding address to collect the answer.
TEST(DurableTest, DrainMigratesRunningJobsToPeer) {
  TempDir data;
  testkit::ClusterConfig config;
  config.rating_base = 500.0;
  testkit::ClusterServerSpec source;
  source.name = "server0";
  source.workers = 2;
  source.slowdown_mode = server::SlowdownMode::kSleep;
  source.data_dir = data.path;
  source.migrate_on_drain = true;
  testkit::ClusterServerSpec peer = source;
  peer.name = "server1";
  peer.data_dir.clear();  // the receiver needs no journal to accept transfers
  peer.migrate_on_drain = false;
  config.servers = {source, peer};
  config.io_timeout_s = 30.0;
  auto cluster = testkit::TestCluster::start(config);
  ASSERT_TRUE(cluster.ok()) << cluster.error().to_string();
  const net::Endpoint src_endpoint = cluster.value()->server(0).endpoint();

  const auto migrated_before = metrics::counter("server.jobs_migrated_total").value();

  // Two long jobs directly on server0 (simwork(1500) = ~3 s each).
  auto conn_a = net::TcpConnection::connect(src_endpoint);
  ASSERT_TRUE(conn_a.ok()) << conn_a.error().to_string();
  ASSERT_TRUE(send_solve(conn_a.value(), 3001, 1500).ok());
  auto conn_b = net::TcpConnection::connect(src_endpoint);
  ASSERT_TRUE(conn_b.ok()) << conn_b.error().to_string();
  ASSERT_TRUE(send_solve(conn_b.value(), 3002, 1500).ok());

  // Wait until both are running with at least one checkpoint banked.
  ASSERT_TRUE(eventually(
      [&] {
        return probed_iteration(src_endpoint, 3001) >= 100 &&
               probed_iteration(src_endpoint, 3002) >= 100;
      },
      10.0))
      << "jobs never built a checkpoint before the drain";

  // Drain with a deadline far shorter than the remaining work: the sweep
  // trips both jobs, which hand over instead of dying as plain kCancelled.
  auto ack = cluster.value()->drain_server(0, /*deadline_s=*/0.2);
  ASSERT_TRUE(ack.ok()) << ack.error().to_string();
  EXPECT_TRUE(ack.value().started);
  ASSERT_TRUE(eventually([&] { return cluster.value()->server(0).drained(); }, 15.0));

  // Every running job was migrated, and the counters agree. The drain does
  // not report done until the hand-offs resolve, but poll anyway so a slow
  // (sanitized) TransferAck round-trip cannot race the read.
  ASSERT_TRUE(eventually(
      [&] { return cluster.value()->server(0).jobs_migrated() == 2; }, 15.0));
  EXPECT_EQ(cluster.value()->server(0).jobs_migrated(), 2u);
  EXPECT_EQ(metrics::counter("server.jobs_migrated_total").value() - migrated_before, 2u);

  // The original connections hear the forwarding address, not a bare cancel.
  auto redirect = net::recv_message(conn_a.value(), 10.0);
  ASSERT_TRUE(redirect.ok()) << redirect.error().to_string();
  serial::Decoder dec(redirect.value().payload);
  auto moved = proto::SolveResult::decode(dec);
  ASSERT_TRUE(moved.ok()) << moved.error().to_string();
  EXPECT_EQ(static_cast<ErrorCode>(moved.value().error_code), ErrorCode::kMigrated);
  ASSERT_NE(moved.value().migrated_port, 0);
  EXPECT_EQ(moved.value().migrated_host, cluster.value()->server(1).endpoint().host);
  EXPECT_EQ(moved.value().migrated_port, cluster.value()->server(1).endpoint().port);

  // Following the redirect (wait_for_job chases MIGRATED hops on its own,
  // so probing the *drained source* also lands on the answer).
  for (const std::uint64_t id : {3001ull, 3002ull}) {
    auto result = client::wait_for_job(src_endpoint, id, /*budget_s=*/30.0);
    ASSERT_TRUE(result.ok()) << "job " << id << ": " << result.error().to_string();
    EXPECT_EQ(result.value().error_code, 0u) << result.value().error_message;
  }

  // The peer resumed both transfers from their carried checkpoints — no
  // from-scratch restarts.
  EXPECT_EQ(cluster.value()->server(1).jobs_resumed(), 2u);
  EXPECT_GE(cluster.value()->server(1).last_resume_iteration(), 50u);
}

// ---- satellite: netslpr/netslwt against a long-running solve ----

TEST(DurableTest, ProbeAndWaitObserveALongSolve) {
  testkit::ClusterConfig config;
  config.rating_base = 500.0;
  testkit::ClusterServerSpec spec;
  spec.name = "server0";
  spec.workers = 1;
  spec.slowdown_mode = server::SlowdownMode::kSleep;
  config.servers = {spec};  // no data_dir: probe works journal-less too
  config.io_timeout_s = 30.0;
  auto cluster = testkit::TestCluster::start(config);
  ASSERT_TRUE(cluster.ok()) << cluster.error().to_string();
  const net::Endpoint endpoint = cluster.value()->server(0).endpoint();

  auto conn = net::TcpConnection::connect(endpoint);
  ASSERT_TRUE(conn.ok()) << conn.error().to_string();
  ASSERT_TRUE(send_solve(conn.value(), 9001, 800).ok());

  // An id the server has never seen probes as unknown, cleanly.
  auto unknown = client::probe_request(endpoint, 4242);
  ASSERT_TRUE(unknown.ok()) << unknown.error().to_string();
  EXPECT_EQ(unknown.value().state, proto::JobState::kUnknown);

  // The live job reports running, with the kernel's iteration advancing and
  // a residual that stays a sane fraction of remaining work.
  ASSERT_TRUE(eventually(
      [&] {
        auto reply = client::probe_request(endpoint, 9001);
        return reply.ok() && reply.value().state == proto::JobState::kRunning &&
               reply.value().iteration > 0;
      },
      10.0));
  const std::uint64_t seen = probed_iteration(endpoint, 9001);
  EXPECT_TRUE(eventually([&] { return probed_iteration(endpoint, 9001) > seen ||
                                      probed_iteration(endpoint, 9001) == 0; },
                         10.0))
      << "iteration never advanced between probes";
  auto mid = client::probe_request(endpoint, 9001);
  if (mid.ok() && mid.value().state == proto::JobState::kRunning) {
    EXPECT_GE(mid.value().residual, 0.0);
    EXPECT_LE(mid.value().residual, 1.0);
  }

  // netslwt: poll to completion and fetch the stored result.
  auto result = client::wait_for_job(endpoint, 9001, /*budget_s=*/30.0);
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  EXPECT_EQ(result.value().error_code, 0u) << result.value().error_message;
  ASSERT_EQ(result.value().outputs.size(), 1u);
  EXPECT_EQ(result.value().outputs[0].as_int(), 800);

  auto done = client::probe_request(endpoint, 9001, /*fetch_result=*/true);
  ASSERT_TRUE(done.ok()) << done.error().to_string();
  EXPECT_EQ(done.value().state, proto::JobState::kCompleted);
  EXPECT_TRUE(done.value().has_result);
}

// ---- satellite: journal replay fuzz ----

namespace fuzz {

serial::Bytes encoded_request(std::uint64_t id) {
  proto::SolveRequest req;
  req.request_id = id;
  req.problem = "simwork";
  req.args = {DataObject(std::int64_t{10})};
  serial::Encoder enc;
  req.encode(enc);
  return enc.take();
}

serial::Bytes encoded_result(std::uint64_t id) {
  proto::SolveResult res;
  res.request_id = id;
  res.outputs = {DataObject(std::int64_t{10})};
  serial::Encoder enc;
  res.encode(enc);
  return enc.take();
}

server::JournalRecord record(server::JournalRecordType type, std::uint64_t id,
                             serial::Bytes data = {}, std::uint64_t iteration = 0) {
  server::JournalRecord rec;
  rec.type = type;
  rec.request_id = id;
  rec.wall_micros = 1000000;
  rec.iteration = iteration;
  rec.data = std::move(data);
  return rec;
}

// Framed segments of a representative journal: job 7 started with a
// checkpoint, job 8 completed (twice — duplicate terminal), job 9 admitted
// only, and a COMPLETED-before-ADMITTED pair for job 10.
std::vector<serial::Bytes> segments() {
  using server::JournalRecordType;
  std::vector<server::JournalRecord> records;
  records.push_back(record(JournalRecordType::kAdmitted, 7, encoded_request(7)));
  records.push_back(record(JournalRecordType::kStarted, 7));
  records.push_back(record(JournalRecordType::kCheckpoint, 7, {1, 2, 3, 4}, 40));
  records.push_back(record(JournalRecordType::kAdmitted, 8, encoded_request(8)));
  records.push_back(record(JournalRecordType::kCompleted, 8, encoded_result(8)));
  records.push_back(record(JournalRecordType::kCompleted, 8, encoded_result(8)));
  records.push_back(record(JournalRecordType::kAdmitted, 9, encoded_request(9)));
  records.push_back(record(JournalRecordType::kCompleted, 10, encoded_result(10)));
  records.push_back(record(JournalRecordType::kAdmitted, 10, encoded_request(10)));
  std::vector<serial::Bytes> out;
  for (const auto& rec : records) {
    serial::Bytes framed;
    rec.frame(framed);
    out.push_back(std::move(framed));
  }
  return out;
}

serial::Bytes concat(const std::vector<serial::Bytes>& segments) {
  serial::Bytes out;
  for (const auto& seg : segments) out.insert(out.end(), seg.begin(), seg.end());
  return out;
}

bool unfinished_contains(const server::ReplaySummary& summary, std::uint64_t id) {
  for (const auto& job : summary.unfinished) {
    if (job.request.request_id == id) return true;
  }
  return false;
}

}  // namespace fuzz

TEST(DurableTest, JournalReplayIntactJournal) {
  const auto summary = server::replay_journal_bytes(fuzz::concat(fuzz::segments()));
  EXPECT_EQ(summary.records, 9u);
  EXPECT_EQ(summary.skipped, 0u);
  // 7 resumes from its checkpoint, 9 restarts from scratch.
  ASSERT_EQ(summary.unfinished.size(), 2u);
  EXPECT_EQ(summary.unfinished[0].request.request_id, 7u);
  EXPECT_TRUE(summary.unfinished[0].started);
  EXPECT_EQ(summary.unfinished[0].snapshot.iteration, 40u);
  EXPECT_EQ(summary.unfinished[1].request.request_id, 9u);
  EXPECT_EQ(summary.unfinished[1].snapshot.iteration, 0u);
  // 8 is terminal (the duplicate was idempotent); 10's COMPLETED wins over
  // its later ADMITTED — a completed job is never re-run.
  EXPECT_EQ(summary.completed.size(), 2u);
  EXPECT_EQ(summary.completed.count(8), 1u);
  EXPECT_EQ(summary.completed.count(10), 1u);
  EXPECT_FALSE(fuzz::unfinished_contains(summary, 8));
  EXPECT_FALSE(fuzz::unfinished_contains(summary, 10));
}

TEST(DurableTest, JournalReplayTruncatedAtEveryByte) {
  const auto segments = fuzz::segments();
  const auto full = fuzz::concat(segments);
  // Where each COMPLETED record for job 8 ends in the full stream.
  std::size_t completed8_end = 0;
  {
    std::size_t offset = 0;
    for (std::size_t i = 0; i < segments.size(); ++i) {
      offset += segments[i].size();
      if (i == 4) completed8_end = offset;  // first COMPLETED(8)
    }
  }
  for (std::size_t len = 0; len <= full.size(); ++len) {
    const serial::Bytes prefix(full.begin(), full.begin() + static_cast<long>(len));
    const auto summary = server::replay_journal_bytes(prefix);  // must not throw/crash
    // An id is never both unfinished and completed.
    for (const auto& [id, result] : summary.completed) {
      EXPECT_FALSE(fuzz::unfinished_contains(summary, id))
          << "id " << id << " both terminal and unfinished at prefix " << len;
    }
    // Once job 8's COMPLETED record fully fits, 8 can never resurface as
    // unfinished, no matter where the tail tore.
    if (len >= completed8_end) {
      EXPECT_FALSE(fuzz::unfinished_contains(summary, 8)) << "at prefix " << len;
      EXPECT_EQ(summary.completed.count(8), 1u) << "at prefix " << len;
    }
  }
}

// The storage-fault analogue of the truncation fuzz: a torn *partial* final
// record (ENOSPC / power loss mid-append leaves len+garbage, not a clean
// cut) corrupted at every byte offset. Replay must never crash, must keep
// the longest valid prefix, and must never resurrect job 8 (terminal since
// record 5) or invent an unfinished job that was never fully admitted.
TEST(DurableTest, JournalReplayFinalRecordCorruptedAtEveryByte) {
  const auto segments = fuzz::segments();
  serial::Bytes prefix;  // everything but the final record
  for (std::size_t i = 0; i + 1 < segments.size(); ++i) {
    prefix.insert(prefix.end(), segments[i].begin(), segments[i].end());
  }
  const auto& last = segments.back();
  for (std::size_t at = 0; at < last.size(); ++at) {
    for (const std::uint8_t flip : {0x01, 0x80, 0xff}) {
      auto journal = prefix;
      journal.insert(journal.end(), last.begin(), last.end());
      journal[prefix.size() + at] ^= flip;
      const auto summary = server::replay_journal_bytes(journal);
      // The intact prefix always replays: a fault in the tail cannot damage
      // records that already landed. (A flipped length header makes the tail
      // look torn — records 8, skipped 0; a flipped payload byte trips the
      // CRC — records 8, skipped 1; either is a valid longest-prefix read.)
      EXPECT_GE(summary.records, segments.size() - 1)
          << "prefix lost at offset " << at << " flip " << int(flip);
      EXPECT_LE(summary.skipped, 1u) << "at offset " << at;
      EXPECT_FALSE(fuzz::unfinished_contains(summary, 8))
          << "terminal job resurrected at offset " << at;
      EXPECT_EQ(summary.completed.count(8), 1u);
      // Jobs only ever materialize from fully-CRC-valid ADMITTED records.
      for (const auto& job : summary.unfinished) {
        EXPECT_TRUE(job.request.request_id == 7 || job.request.request_id == 9)
            << "phantom job " << job.request.request_id << " at offset " << at;
      }
    }
  }
}

TEST(DurableTest, JournalReplaySkipsBitFlippedRecords) {
  const auto segments = fuzz::segments();
  // Flip one payload byte in every record position, one at a time: replay
  // must skip exactly that record (CRC catches it) and keep the rest.
  for (std::size_t victim = 0; victim < segments.size(); ++victim) {
    auto copy = segments;
    ASSERT_GT(copy[victim].size(), 9u);
    copy[victim][9] ^= 0x40;  // second payload byte (skip len+crc header)
    const auto summary = server::replay_journal_bytes(fuzz::concat(copy));
    EXPECT_EQ(summary.skipped, 1u) << "victim " << victim;
    EXPECT_EQ(summary.records, segments.size() - 1) << "victim " << victim;
  }
  // Flipping the *duplicate* COMPLETED(8) record must not resurrect job 8:
  // the first terminal record still wins.
  auto copy = segments;
  copy[5][9] ^= 0x40;
  const auto summary = server::replay_journal_bytes(fuzz::concat(copy));
  EXPECT_FALSE(fuzz::unfinished_contains(summary, 8));
  EXPECT_EQ(summary.completed.count(8), 1u);
}

// ---- real disk-full (no injector) ----

// Fill the filesystem holding `dir` with a ballast file until a write fails
// with ENOSPC, then free `leave_bytes` again. Returns the ballast path.
std::string fill_filesystem(const std::string& dir, std::size_t leave_bytes) {
  const std::string ballast = dir + "/ballast";
  std::FILE* f = std::fopen(ballast.c_str(), "wb");
  if (f == nullptr) return ballast;
  std::vector<char> chunk(64 * 1024, '\xa5');
  std::size_t written = 0;
  while (std::fwrite(chunk.data(), 1, chunk.size(), f) == chunk.size()) {
    written += chunk.size();
    if (written > (1u << 30)) break;  // not actually a small filesystem
  }
  std::fclose(f);
  if (written > leave_bytes) {
    std::error_code ec;
    std::filesystem::resize_file(ballast, written - leave_bytes, ec);
  }
  return ballast;
}

// Real ENOSPC, not an injected one: CI mounts a small tmpfs and points
// NS_DURABLE_TMPDIR at it (skipped otherwise — filling a shared /tmp would
// be antisocial). The filesystem is packed with ballast until only a sliver
// remains, so the journal genuinely runs out of space mid-burst. The server
// must fail-stop the journal, degrade to explicitly non-durable mode, and
// keep answering: every job completes, nothing crashes, nothing is silently
// lost — the same contract the injector-driven test_storage suite pins,
// proven here against the actual kernel ENOSPC path.
TEST(DurableTest, RealEnospcDegradesGracefully) {
  const char* base = std::getenv("NS_DURABLE_TMPDIR");
  if (base == nullptr || *base == '\0') {
    GTEST_SKIP() << "set NS_DURABLE_TMPDIR to a small scratch filesystem to run";
  }
  TempDir data;  // lives under NS_DURABLE_TMPDIR
  testkit::ClusterConfig config;
  config.rating_base = 500.0;
  testkit::ClusterServerSpec spec;
  spec.name = "server0";
  spec.workers = 2;
  spec.slowdown_mode = server::SlowdownMode::kSleep;
  spec.data_dir = data.path;
  spec.journal_fsync = true;
  spec.checkpoint_interval = 5;  // fat journal traffic: hit the wall quickly
  config.servers = {spec};
  config.io_timeout_s = 30.0;
  auto cluster = testkit::TestCluster::start(config);
  ASSERT_TRUE(cluster.ok()) << cluster.error().to_string();
  auto& server = cluster.value()->server(0);

  // Leave ~64 KB: enough for the burst's first appends, far too little for
  // all of it (simstate checkpoints carry a 16 KB state vector each).
  const std::string ballast = fill_filesystem(data.path, 64 * 1024);
  const auto errors_before = metrics::counter("store.write_errors_total").value();

  auto client = cluster.value()->make_client();
  constexpr int kJobs = 12;
  int ok = 0;
  std::vector<client::RequestHandle> handles;
  handles.reserve(kJobs);
  for (int i = 0; i < kJobs; ++i) {
    handles.push_back(client.netsl_nb(
        "simstate", {DataObject(std::int64_t{20}), DataObject(std::int64_t{16})}));
  }
  for (auto& handle : handles) {
    if (handle.wait().ok()) ++ok;
  }
  EXPECT_EQ(ok, kJobs) << "jobs lost under real ENOSPC: " << ok << "/" << kJobs;

  ASSERT_TRUE(eventually([&] { return server.durability_degraded(); }, 5.0))
      << "server never entered degraded mode on a full filesystem";
  EXPECT_GT(metrics::counter("store.write_errors_total").value(), errors_before);

  // Still serving, explicitly non-durable.
  auto after = client.netsl("simwork", {DataObject(std::int64_t{1})});
  EXPECT_TRUE(after.ok()) << (after.ok() ? "" : after.error().to_string());

  std::error_code ec;
  std::filesystem::remove(ballast, ec);  // free the space before TempDir cleanup
}

}  // namespace
}  // namespace ns
