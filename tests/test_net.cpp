// Tests for ns_net: sockets, framed transport, shaped-link timing.
#include <gtest/gtest.h>

#include <thread>

#include "common/clock.hpp"
#include "net/shaped_link.hpp"
#include "net/socket.hpp"
#include "net/transport.hpp"

namespace ns::net {
namespace {

TEST(SocketTest, BindEphemeralAndQueryPort) {
  auto listener = TcpListener::bind({"127.0.0.1", 0});
  ASSERT_TRUE(listener.ok());
  EXPECT_GT(listener.value().port(), 0);
}

TEST(SocketTest, ConnectAcceptRoundTrip) {
  auto listener = TcpListener::bind({"127.0.0.1", 0});
  ASSERT_TRUE(listener.ok());

  std::thread client_thread([ep = listener.value().endpoint()] {
    auto conn = TcpConnection::connect(ep);
    ASSERT_TRUE(conn.ok());
    const char msg[] = "ping!";
    ASSERT_TRUE(conn.value().send_all(msg, sizeof(msg)).ok());
    char reply[6] = {};
    ASSERT_TRUE(conn.value().recv_all(reply, sizeof(reply), 2.0).ok());
    EXPECT_STREQ(reply, "pong!");
  });

  auto server_conn = listener.value().accept(2.0);
  ASSERT_TRUE(server_conn.ok());
  char buf[6] = {};
  ASSERT_TRUE(server_conn.value().recv_all(buf, sizeof(buf), 2.0).ok());
  EXPECT_STREQ(buf, "ping!");
  const char reply[] = "pong!";
  ASSERT_TRUE(server_conn.value().send_all(reply, sizeof(reply)).ok());
  client_thread.join();
}

TEST(SocketTest, AcceptTimesOut) {
  auto listener = TcpListener::bind({"127.0.0.1", 0});
  ASSERT_TRUE(listener.ok());
  const Stopwatch watch;
  auto conn = listener.value().accept(0.05);
  ASSERT_FALSE(conn.ok());
  EXPECT_EQ(conn.error().code, ErrorCode::kTimeout);
  EXPECT_GE(watch.elapsed(), 0.04);
}

TEST(SocketTest, RecvTimesOutOnSilence) {
  auto listener = TcpListener::bind({"127.0.0.1", 0});
  ASSERT_TRUE(listener.ok());
  auto client = TcpConnection::connect(listener.value().endpoint());
  ASSERT_TRUE(client.ok());
  auto server_conn = listener.value().accept(1.0);
  ASSERT_TRUE(server_conn.ok());

  char buf[4];
  auto status = server_conn.value().recv_all(buf, sizeof(buf), 0.05);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, ErrorCode::kTimeout);
}

TEST(SocketTest, RecvDetectsPeerClose) {
  auto listener = TcpListener::bind({"127.0.0.1", 0});
  ASSERT_TRUE(listener.ok());
  auto client = TcpConnection::connect(listener.value().endpoint());
  ASSERT_TRUE(client.ok());
  auto server_conn = listener.value().accept(1.0);
  ASSERT_TRUE(server_conn.ok());
  client.value().close();

  char buf[4];
  auto status = server_conn.value().recv_all(buf, sizeof(buf), 1.0);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, ErrorCode::kConnectionClosed);
}

TEST(SocketTest, ConnectToClosedPortFails) {
  // Bind-then-close to find a port that is (very likely) not listening.
  std::uint16_t dead_port;
  {
    auto listener = TcpListener::bind({"127.0.0.1", 0});
    ASSERT_TRUE(listener.ok());
    dead_port = listener.value().port();
  }
  auto conn = TcpConnection::connect({"127.0.0.1", dead_port}, /*timeout_secs=*/0.1);
  ASSERT_FALSE(conn.ok());
  EXPECT_EQ(conn.error().code, ErrorCode::kConnectFailed);
}

TEST(SocketTest, BadAddressRejected) {
  auto conn = TcpConnection::connect({"not-an-ip", 80}, 0.1);
  ASSERT_FALSE(conn.ok());
  auto listener = TcpListener::bind({"999.0.0.1", 0});
  ASSERT_FALSE(listener.ok());
}

TEST(SocketTest, EndpointIntrospection) {
  auto listener = TcpListener::bind({"127.0.0.1", 0});
  ASSERT_TRUE(listener.ok());
  auto client = TcpConnection::connect(listener.value().endpoint());
  ASSERT_TRUE(client.ok());
  auto peer = client.value().peer_endpoint();
  ASSERT_TRUE(peer.ok());
  EXPECT_EQ(peer.value().port, listener.value().port());
  EXPECT_EQ(peer.value().host, "127.0.0.1");
  auto local = client.value().local_endpoint();
  ASSERT_TRUE(local.ok());
  EXPECT_GT(local.value().port, 0);
}

TEST(SocketTest, LargeTransferIntegrity) {
  auto listener = TcpListener::bind({"127.0.0.1", 0});
  ASSERT_TRUE(listener.ok());

  constexpr std::size_t kSize = 4 * 1024 * 1024;
  std::vector<std::uint8_t> data(kSize);
  for (std::size_t i = 0; i < kSize; ++i) data[i] = static_cast<std::uint8_t>(i * 7);

  std::thread sender([ep = listener.value().endpoint(), &data] {
    auto conn = TcpConnection::connect(ep);
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE(conn.value().send_all(data.data(), data.size()).ok());
  });

  auto conn = listener.value().accept(2.0);
  ASSERT_TRUE(conn.ok());
  std::vector<std::uint8_t> received(kSize);
  ASSERT_TRUE(conn.value().recv_all(received.data(), received.size(), 10.0).ok());
  sender.join();
  EXPECT_EQ(received, data);
}

// ---- transport ----

TEST(TransportTest, MessageRoundTrip) {
  auto listener = TcpListener::bind({"127.0.0.1", 0});
  ASSERT_TRUE(listener.ok());

  serial::Bytes payload{10, 20, 30};
  std::thread sender([ep = listener.value().endpoint(), &payload] {
    auto conn = TcpConnection::connect(ep);
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE(send_message(conn.value(), 5, payload).ok());
    ASSERT_TRUE(send_message(conn.value(), 6, {}).ok());
  });

  auto conn = listener.value().accept(2.0);
  ASSERT_TRUE(conn.ok());
  auto msg1 = recv_message(conn.value(), 2.0);
  ASSERT_TRUE(msg1.ok());
  EXPECT_EQ(msg1.value().type, 5);
  EXPECT_EQ(msg1.value().payload, payload);
  auto msg2 = recv_message(conn.value(), 2.0);
  ASSERT_TRUE(msg2.ok());
  EXPECT_EQ(msg2.value().type, 6);
  EXPECT_TRUE(msg2.value().payload.empty());
  sender.join();
}

TEST(TransportTest, GarbageStreamRejected) {
  auto listener = TcpListener::bind({"127.0.0.1", 0});
  ASSERT_TRUE(listener.ok());
  std::thread sender([ep = listener.value().endpoint()] {
    auto conn = TcpConnection::connect(ep);
    ASSERT_TRUE(conn.ok());
    const char junk[32] = "this is not a NetSolve frame!!";
    ASSERT_TRUE(conn.value().send_all(junk, sizeof(junk)).ok());
  });
  auto conn = listener.value().accept(2.0);
  ASSERT_TRUE(conn.ok());
  auto msg = recv_message(conn.value(), 2.0);
  ASSERT_FALSE(msg.ok());
  EXPECT_EQ(msg.error().code, ErrorCode::kProtocol);
  sender.join();
}

TEST(TransportTest, OversizedFrameLengthRejected) {
  auto listener = TcpListener::bind({"127.0.0.1", 0});
  ASSERT_TRUE(listener.ok());
  std::thread sender([ep = listener.value().endpoint()] {
    auto conn = TcpConnection::connect(ep);
    ASSERT_TRUE(conn.ok());
    // Hand-craft a header claiming a payload beyond kMaxPayload.
    serial::FrameHeader header;
    header.type = 1;
    header.length = 0xffffffffu;
    std::uint8_t buf[serial::kHeaderSize];
    serial::encode_header(header, buf);
    ASSERT_TRUE(conn.value().send_all(buf, sizeof(buf)).ok());
  });
  auto conn = listener.value().accept(2.0);
  ASSERT_TRUE(conn.ok());
  auto msg = recv_message(conn.value(), 2.0);
  ASSERT_FALSE(msg.ok());
  EXPECT_EQ(msg.error().code, ErrorCode::kProtocol);
  sender.join();
}

// ---- shaped link ----

TEST(LinkShapeTest, Predictions) {
  const LinkShape unshaped = LinkShape::unshaped();
  EXPECT_TRUE(unshaped.is_unshaped());
  EXPECT_EQ(unshaped.predict_seconds(1 << 20), 0.0);

  const LinkShape wan = LinkShape::wan();
  EXPECT_FALSE(wan.is_unshaped());
  // 20 ms + 1 MiB / 1.25 MB/s ~= 0.86 s
  EXPECT_NEAR(wan.predict_seconds(1 << 20), 0.020 + 1048576.0 / 1.25e6, 1e-9);
}

TEST(ShapedLinkTest, LatencyDelaysDelivery) {
  auto listener = TcpListener::bind({"127.0.0.1", 0});
  ASSERT_TRUE(listener.ok());
  LinkShape shape;
  shape.latency_s = 0.05;

  std::thread sender([ep = listener.value().endpoint(), shape] {
    auto conn = TcpConnection::connect(ep);
    ASSERT_TRUE(conn.ok());
    const char msg[8] = "hello";
    ASSERT_TRUE(shaped_send(conn.value(), msg, sizeof(msg), shape).ok());
  });

  auto conn = listener.value().accept(2.0);
  ASSERT_TRUE(conn.ok());
  const Stopwatch watch;
  char buf[8];
  ASSERT_TRUE(conn.value().recv_all(buf, sizeof(buf), 2.0).ok());
  EXPECT_GE(watch.elapsed(), 0.045);
  sender.join();
}

TEST(ShapedLinkTest, BandwidthPacesLargeTransfer) {
  auto listener = TcpListener::bind({"127.0.0.1", 0});
  ASSERT_TRUE(listener.ok());
  LinkShape shape;
  shape.bandwidth_Bps = 10e6;  // 10 MB/s
  constexpr std::size_t kBytes = 1 * 1024 * 1024;
  const double expected = static_cast<double>(kBytes) / shape.bandwidth_Bps;  // ~0.105 s

  std::thread sender([ep = listener.value().endpoint(), shape] {
    auto conn = TcpConnection::connect(ep);
    ASSERT_TRUE(conn.ok());
    std::vector<std::uint8_t> data(kBytes, 0x5a);
    ASSERT_TRUE(shaped_send(conn.value(), data.data(), data.size(), shape).ok());
  });

  auto conn = listener.value().accept(2.0);
  ASSERT_TRUE(conn.ok());
  const Stopwatch watch;
  std::vector<std::uint8_t> buf(kBytes);
  ASSERT_TRUE(conn.value().recv_all(buf.data(), buf.size(), 10.0).ok());
  const double elapsed = watch.elapsed();
  sender.join();
  EXPECT_GE(elapsed, expected * 0.8) << "pacing too fast";
  EXPECT_LE(elapsed, expected * 3.0) << "pacing way too slow";
}

TEST(ShapedLinkTest, UnshapedFastPathDeliversData) {
  auto listener = TcpListener::bind({"127.0.0.1", 0});
  ASSERT_TRUE(listener.ok());
  std::thread sender([ep = listener.value().endpoint()] {
    auto conn = TcpConnection::connect(ep);
    ASSERT_TRUE(conn.ok());
    std::vector<std::uint8_t> data(100000, 0x11);
    ASSERT_TRUE(shaped_send(conn.value(), data.data(), data.size(), LinkShape::unshaped()).ok());
  });
  auto conn = listener.value().accept(2.0);
  ASSERT_TRUE(conn.ok());
  std::vector<std::uint8_t> buf(100000);
  ASSERT_TRUE(conn.value().recv_all(buf.data(), buf.size(), 5.0).ok());
  sender.join();
  EXPECT_EQ(buf[99999], 0x11);
}

TEST(ShapedLinkTest, ShapedMessagePreservesFraming) {
  auto listener = TcpListener::bind({"127.0.0.1", 0});
  ASSERT_TRUE(listener.ok());
  LinkShape shape;
  shape.latency_s = 0.01;
  shape.bandwidth_Bps = 50e6;

  serial::Bytes payload(200000);
  for (std::size_t i = 0; i < payload.size(); ++i) payload[i] = static_cast<std::uint8_t>(i);

  std::thread sender([ep = listener.value().endpoint(), shape, &payload] {
    auto conn = TcpConnection::connect(ep);
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE(send_message(conn.value(), 3, payload, shape).ok());
  });
  auto conn = listener.value().accept(2.0);
  ASSERT_TRUE(conn.ok());
  auto msg = recv_message(conn.value(), 5.0);
  ASSERT_TRUE(msg.ok());
  EXPECT_EQ(msg.value().payload, payload);
  sender.join();
}

}  // namespace
}  // namespace ns::net
