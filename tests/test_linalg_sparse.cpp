// Tests for the sparse substrate: CSR construction/validation, generators,
// iterative solvers (CG / Jacobi / SOR), and curve fitting.
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/blas.hpp"
#include "linalg/fit.hpp"
#include "linalg/iterative.hpp"
#include "linalg/lu.hpp"
#include "linalg/sparse.hpp"

namespace ns::linalg {
namespace {

// ---- CSR construction ----

TEST(CsrTest, FromTripletsBasic) {
  auto m = CsrMatrix::from_triplets(2, 3, {{0, 0, 1.0}, {1, 2, 5.0}, {0, 1, 2.0}});
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m.value().nnz(), 3u);
  EXPECT_DOUBLE_EQ(m.value().at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.value().at(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m.value().at(1, 2), 5.0);
  EXPECT_DOUBLE_EQ(m.value().at(1, 0), 0.0);
}

TEST(CsrTest, DuplicateTripletsSum) {
  auto m = CsrMatrix::from_triplets(1, 1, {{0, 0, 1.5}, {0, 0, 2.5}});
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m.value().nnz(), 1u);
  EXPECT_DOUBLE_EQ(m.value().at(0, 0), 4.0);
}

TEST(CsrTest, OutOfRangeTripletRejected) {
  EXPECT_FALSE(CsrMatrix::from_triplets(2, 2, {{2, 0, 1.0}}).ok());
  EXPECT_FALSE(CsrMatrix::from_triplets(2, 2, {{0, 5, 1.0}}).ok());
}

TEST(CsrTest, FromCsrValidation) {
  // Valid 2x2 identity.
  auto ok = CsrMatrix::from_csr(2, 2, {0, 1, 2}, {0, 1}, {1.0, 1.0});
  ASSERT_TRUE(ok.ok());
  // indptr wrong length.
  EXPECT_FALSE(CsrMatrix::from_csr(2, 2, {0, 2}, {0, 1}, {1.0, 1.0}).ok());
  // indptr not monotone.
  EXPECT_FALSE(CsrMatrix::from_csr(2, 2, {0, 2, 1}, {0, 1}, {1.0, 1.0}).ok());
  // column out of range.
  EXPECT_FALSE(CsrMatrix::from_csr(2, 2, {0, 1, 2}, {0, 7}, {1.0, 1.0}).ok());
  // endpoint mismatch.
  EXPECT_FALSE(CsrMatrix::from_csr(2, 2, {0, 1, 3}, {0, 1}, {1.0, 1.0}).ok());
  // indices/values length mismatch.
  EXPECT_FALSE(CsrMatrix::from_csr(2, 2, {0, 1, 2}, {0, 1}, {1.0}).ok());
}

TEST(CsrTest, MultiplyMatchesDense) {
  Rng rng(70);
  const CsrMatrix sparse = random_sparse_spd(30, 4, rng);
  const Matrix dense = sparse.to_dense();
  const Vector x = random_vector(30, rng);
  const Vector y_sparse = sparse.multiply(x);
  Vector y_dense(30, 0.0);
  gemv(1.0, dense, x, 0.0, y_dense);
  EXPECT_LT(max_abs_diff(y_sparse, y_dense), 1e-10);
}

TEST(CsrTest, DiagonalExtraction) {
  const CsrMatrix m = poisson_1d(5);
  const Vector d = m.diagonal();
  for (const double v : d) EXPECT_DOUBLE_EQ(v, 2.0);
}

// ---- generators ----

TEST(GeneratorTest, Poisson1dStructure) {
  const CsrMatrix m = poisson_1d(4);
  EXPECT_EQ(m.rows(), 4u);
  EXPECT_EQ(m.nnz(), 3u * 4u - 2u);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(m.at(1, 0), -1.0);
  EXPECT_DOUBLE_EQ(m.at(0, 3), 0.0);
}

TEST(GeneratorTest, Poisson2dStructure) {
  const CsrMatrix m = poisson_2d(3, 3);
  EXPECT_EQ(m.rows(), 9u);
  EXPECT_DOUBLE_EQ(m.at(4, 4), 4.0);  // center point
  EXPECT_DOUBLE_EQ(m.at(4, 1), -1.0);
  EXPECT_DOUBLE_EQ(m.at(4, 3), -1.0);
  EXPECT_DOUBLE_EQ(m.at(4, 5), -1.0);
  EXPECT_DOUBLE_EQ(m.at(4, 7), -1.0);
  EXPECT_DOUBLE_EQ(m.at(0, 8), 0.0);
}

TEST(GeneratorTest, RandomSparseSpdIsSymmetricAndDominant) {
  Rng rng(71);
  const CsrMatrix m = random_sparse_spd(50, 6, rng);
  for (std::size_t i = 0; i < 50; ++i) {
    double off = 0;
    for (std::size_t j = 0; j < 50; ++j) {
      if (i != j) {
        EXPECT_NEAR(m.at(i, j), m.at(j, i), 1e-12);
        off += std::abs(m.at(i, j));
      }
    }
    EXPECT_GT(m.at(i, i), off);
  }
}

// ---- iterative solvers ----

struct IterCase {
  std::size_t n;
  std::uint64_t seed;
};

class CgPropertyTest : public ::testing::TestWithParam<IterCase> {};

TEST_P(CgPropertyTest, ConvergesOnSpdSystems) {
  const auto [n, seed] = GetParam();
  Rng rng(seed);
  const CsrMatrix a = random_sparse_spd(n, 5, rng);
  const Vector x_true = random_vector(n, rng);
  const Vector b = a.multiply(x_true);

  auto res = conjugate_gradient(a, b);
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res.value().converged);
  EXPECT_LE(res.value().residual, 1e-10);
  EXPECT_LT(max_abs_diff(res.value().x, x_true), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CgPropertyTest,
                         ::testing::Values(IterCase{5, 80}, IterCase{20, 81}, IterCase{50, 82},
                                           IterCase{100, 83}, IterCase{200, 84}));

TEST(CgTest, PoissonSystem) {
  const CsrMatrix a = poisson_2d(10, 10);
  Vector b(100, 1.0);
  auto res = conjugate_gradient(a, b);
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res.value().converged);
  // Verify against a dense solve.
  auto x_dense = dgesv(a.to_dense(), b);
  ASSERT_TRUE(x_dense.ok());
  EXPECT_LT(max_abs_diff(res.value().x, x_dense.value()), 1e-6);
}

TEST(CgTest, ZeroRhsGivesZero) {
  const CsrMatrix a = poisson_1d(10);
  auto res = conjugate_gradient(a, Vector(10, 0.0));
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res.value().converged);
  EXPECT_EQ(res.value().iterations, 0u);
  for (const double v : res.value().x) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(CgTest, IndefiniteMatrixBreaksDown) {
  // [-1 0; 0 -1]: p^T A p < 0 on the first step.
  auto a = CsrMatrix::from_triplets(2, 2, {{0, 0, -1.0}, {1, 1, -1.0}});
  ASSERT_TRUE(a.ok());
  auto res = conjugate_gradient(a.value(), Vector{1.0, 1.0});
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.error().code, ErrorCode::kExecutionFailed);
}

TEST(CgTest, NonSquareRejected) {
  auto a = CsrMatrix::from_triplets(2, 3, {{0, 0, 1.0}});
  ASSERT_TRUE(a.ok());
  EXPECT_FALSE(conjugate_gradient(a.value(), Vector{1, 1}).ok());
}

TEST(CgTest, MaxIterationsHonoured) {
  const CsrMatrix a = poisson_2d(12, 12);
  Vector b(144, 1.0);
  IterativeOptions opts;
  opts.max_iterations = 2;
  auto res = conjugate_gradient(a, b, opts);
  ASSERT_TRUE(res.ok());
  EXPECT_FALSE(res.value().converged);
  EXPECT_EQ(res.value().iterations, 2u);
}

class JacobiSorPropertyTest : public ::testing::TestWithParam<IterCase> {};

TEST_P(JacobiSorPropertyTest, BothConvergeOnDominantSystems) {
  const auto [n, seed] = GetParam();
  Rng rng(seed);
  const CsrMatrix a = random_sparse_spd(n, 4, rng);
  const Vector x_true = random_vector(n, rng);
  const Vector b = a.multiply(x_true);

  IterativeOptions opts;
  opts.tolerance = 1e-9;
  opts.max_iterations = 20000;

  auto jac = jacobi_solve(a, b, opts);
  ASSERT_TRUE(jac.ok());
  EXPECT_TRUE(jac.value().converged);
  EXPECT_LT(max_abs_diff(jac.value().x, x_true), 1e-5);

  opts.omega = 1.2;
  auto sor = sor_solve(a, b, opts);
  ASSERT_TRUE(sor.ok());
  EXPECT_TRUE(sor.value().converged);
  EXPECT_LT(max_abs_diff(sor.value().x, x_true), 1e-5);

  // Gauss-Seidel-flavoured SOR should not need more sweeps than Jacobi on a
  // diagonally dominant system.
  EXPECT_LE(sor.value().iterations, jac.value().iterations);
}

INSTANTIATE_TEST_SUITE_P(Sizes, JacobiSorPropertyTest,
                         ::testing::Values(IterCase{10, 90}, IterCase{40, 91}, IterCase{80, 92}));

TEST(SorTest, OmegaValidation) {
  const CsrMatrix a = poisson_1d(5);
  Vector b(5, 1.0);
  IterativeOptions opts;
  opts.omega = 0.0;
  EXPECT_FALSE(sor_solve(a, b, opts).ok());
  opts.omega = 2.0;
  EXPECT_FALSE(sor_solve(a, b, opts).ok());
  opts.omega = 1.0;  // Gauss-Seidel
  auto res = sor_solve(a, b, opts);
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res.value().converged);
}

TEST(JacobiTest, ZeroDiagonalRejected) {
  auto a = CsrMatrix::from_triplets(2, 2, {{0, 1, 1.0}, {1, 0, 1.0}});
  ASSERT_TRUE(a.ok());
  EXPECT_FALSE(jacobi_solve(a.value(), Vector{1, 1}).ok());
}

TEST(IterativeTest, AllThreeAgree) {
  const CsrMatrix a = poisson_1d(30);
  Rng rng(95);
  const Vector b = random_vector(30, rng);
  IterativeOptions opts;
  opts.tolerance = 1e-11;
  opts.max_iterations = 100000;
  auto cg = conjugate_gradient(a, b, opts);
  auto jac = jacobi_solve(a, b, opts);
  opts.omega = 1.5;
  auto sor = sor_solve(a, b, opts);
  ASSERT_TRUE(cg.ok() && jac.ok() && sor.ok());
  ASSERT_TRUE(cg.value().converged && jac.value().converged && sor.value().converged);
  EXPECT_LT(max_abs_diff(cg.value().x, jac.value().x), 1e-6);
  EXPECT_LT(max_abs_diff(cg.value().x, sor.value().x), 1e-6);
}

// ---- fitting ----

TEST(PolyfitTest, ExactQuadraticRecovered) {
  // y = 2 - 3x + 0.5x^2 sampled exactly.
  Vector x, y;
  for (int i = 0; i < 10; ++i) {
    const double xi = static_cast<double>(i) * 0.37 - 1.0;
    x.push_back(xi);
    y.push_back(2.0 - 3.0 * xi + 0.5 * xi * xi);
  }
  auto c = polyfit(x, y, 2);
  ASSERT_TRUE(c.ok());
  ASSERT_EQ(c.value().size(), 3u);
  EXPECT_NEAR(c.value()[0], 2.0, 1e-9);
  EXPECT_NEAR(c.value()[1], -3.0, 1e-9);
  EXPECT_NEAR(c.value()[2], 0.5, 1e-9);
}

TEST(PolyfitTest, NoisyFitReducesResidual) {
  Rng rng(96);
  Vector x, y;
  for (int i = 0; i < 50; ++i) {
    const double xi = static_cast<double>(i) / 10.0;
    x.push_back(xi);
    y.push_back(1.0 + 2.0 * xi + 0.02 * rng.normal());
  }
  auto c = polyfit(x, y, 1);
  ASSERT_TRUE(c.ok());
  EXPECT_NEAR(c.value()[0], 1.0, 0.05);
  EXPECT_NEAR(c.value()[1], 2.0, 0.02);
}

TEST(PolyfitTest, Validation) {
  EXPECT_FALSE(polyfit(Vector{1, 2}, Vector{1}, 1).ok()) << "size mismatch";
  EXPECT_FALSE(polyfit(Vector{1, 2}, Vector{1, 2}, 5).ok()) << "too few points";
}

TEST(PolyvalTest, Horner) {
  // p(x) = 1 + 2x + 3x^2 at x=2 -> 17
  EXPECT_DOUBLE_EQ(polyval(Vector{1, 2, 3}, 2.0), 17.0);
  EXPECT_DOUBLE_EQ(polyval(Vector{}, 5.0), 0.0);
  EXPECT_DOUBLE_EQ(polyval(Vector{7}, 100.0), 7.0);
}

TEST(SplineTest, InterpolatesKnotsExactly) {
  Vector x{0, 1, 2.5, 4};
  Vector y{1, -1, 3, 0};
  auto sp = CubicSpline::fit(x, y);
  ASSERT_TRUE(sp.ok());
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(sp.value()(x[i]), y[i], 1e-10);
  }
}

TEST(SplineTest, ReproducesStraightLine) {
  // A natural cubic spline through collinear points is the line itself.
  Vector x{0, 1, 2, 3, 4};
  Vector y{1, 3, 5, 7, 9};
  auto sp = CubicSpline::fit(x, y);
  ASSERT_TRUE(sp.ok());
  for (double t = 0.0; t <= 4.0; t += 0.25) {
    EXPECT_NEAR(sp.value()(t), 1.0 + 2.0 * t, 1e-9);
  }
}

TEST(SplineTest, SmoothSineApproximation) {
  Vector x, y;
  for (int i = 0; i <= 20; ++i) {
    const double xi = static_cast<double>(i) * 0.314159;
    x.push_back(xi);
    y.push_back(std::sin(xi));
  }
  auto sp = CubicSpline::fit(x, y);
  ASSERT_TRUE(sp.ok());
  for (double t = 0.1; t < 6.2; t += 0.1) {
    EXPECT_NEAR(sp.value()(t), std::sin(t), 5e-3);
  }
}

TEST(SplineTest, Validation) {
  EXPECT_FALSE(CubicSpline::fit(Vector{1}, Vector{1}).ok()) << "needs two knots";
  EXPECT_FALSE(CubicSpline::fit(Vector{1, 1}, Vector{1, 2}).ok()) << "non-increasing";
  EXPECT_FALSE(CubicSpline::fit(Vector{2, 1}, Vector{1, 2}).ok()) << "decreasing";
  EXPECT_FALSE(CubicSpline::fit(Vector{1, 2}, Vector{1}).ok()) << "size mismatch";
}

TEST(SplineTest, TwoKnotsIsLinear) {
  auto sp = CubicSpline::fit(Vector{0, 2}, Vector{0, 4});
  ASSERT_TRUE(sp.ok());
  EXPECT_NEAR(sp.value()(1.0), 2.0, 1e-12);
}

}  // namespace
}  // namespace ns::linalg
