// Tests for the dense numerical substrate: matrix type, BLAS kernels, LU,
// Cholesky, QR, eigensolvers, tridiagonal solve. Heavy on TEST_P property
// sweeps: residual bounds on random systems across sizes and seeds.
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/eigen.hpp"
#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"
#include "linalg/qr.hpp"
#include "linalg/rating.hpp"
#include "linalg/tridiag.hpp"

namespace ns::linalg {
namespace {

// ---- Matrix basics ----

TEST(MatrixTest, ColumnMajorLayout) {
  Matrix m(2, 3);
  m(0, 0) = 1;
  m(1, 0) = 2;
  m(0, 1) = 3;
  EXPECT_EQ(m.data()[0], 1);
  EXPECT_EQ(m.data()[1], 2);
  EXPECT_EQ(m.data()[2], 3);
  EXPECT_EQ(m.col(1)[0], 3);
}

TEST(MatrixTest, Identity) {
  const Matrix i = Matrix::identity(4);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_DOUBLE_EQ(i(r, c), r == c ? 1.0 : 0.0);
    }
  }
}

TEST(MatrixTest, Transpose) {
  Rng rng(1);
  const Matrix a = Matrix::random(3, 5, rng);
  const Matrix at = a.transposed();
  ASSERT_EQ(at.rows(), 5u);
  ASSERT_EQ(at.cols(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 5; ++j) EXPECT_DOUBLE_EQ(at(j, i), a(i, j));
  }
}

TEST(MatrixTest, Norms) {
  Matrix m(2, 2);
  m(0, 0) = 3;
  m(1, 1) = -4;
  EXPECT_DOUBLE_EQ(m.frobenius_norm(), 5.0);
  EXPECT_DOUBLE_EQ(m.max_abs(), 4.0);
}

TEST(MatrixTest, RandomSpdIsSymmetric) {
  Rng rng(2);
  const Matrix a = Matrix::random_spd(16, rng);
  for (std::size_t i = 0; i < 16; ++i) {
    for (std::size_t j = 0; j < 16; ++j) {
      EXPECT_DOUBLE_EQ(a(i, j), a(j, i));
    }
  }
}

TEST(MatrixTest, DiagDominantHasStrongDiagonal) {
  Rng rng(3);
  const Matrix a = Matrix::random_diag_dominant(20, rng);
  for (std::size_t i = 0; i < 20; ++i) {
    double off = 0;
    for (std::size_t j = 0; j < 20; ++j) {
      if (j != i) off += std::abs(a(i, j));
    }
    EXPECT_GT(a(i, i), off);
  }
}

// ---- BLAS level 1 ----

TEST(BlasTest, AxpyDotNrm2Scal) {
  Vector x{1, 2, 3};
  Vector y{4, 5, 6};
  axpy(2.0, x, y);
  EXPECT_EQ(y, (Vector{6, 9, 12}));
  EXPECT_DOUBLE_EQ(dot(x, x), 14.0);
  EXPECT_DOUBLE_EQ(nrm2(Vector{3, 4}), 5.0);
  Vector z{1, -2};
  scal(-3.0, z);
  EXPECT_EQ(z, (Vector{-3, 6}));
}

TEST(BlasTest, Iamax) {
  EXPECT_EQ(iamax(Vector{1, -5, 3}), 1u);
  EXPECT_EQ(iamax(Vector{}), 0u);
  EXPECT_EQ(iamax(Vector{0, 0, 0}), 0u);
}

// ---- BLAS level 2/3 ----

TEST(BlasTest, GemvKnown) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 3;
  a(1, 1) = 4;
  Vector x{5, 6};
  Vector y{1, 1};
  gemv(1.0, a, x, 1.0, y);  // y = A x + y
  EXPECT_EQ(y, (Vector{18, 40}));
}

TEST(BlasTest, GemvTransposed) {
  Rng rng(4);
  const Matrix a = Matrix::random(4, 3, rng);
  const Vector x = random_vector(4, rng);
  Vector y1(3, 0.0);
  gemv_t(1.0, a, x, 0.0, y1);
  Vector y2(3, 0.0);
  gemv(1.0, a.transposed(), x, 0.0, y2);
  EXPECT_LT(max_abs_diff(y1, y2), 1e-12);
}

TEST(BlasTest, GerRank1Update) {
  Matrix a(2, 2);
  ger(2.0, Vector{1, 2}, Vector{3, 4}, a);
  EXPECT_DOUBLE_EQ(a(0, 0), 6);
  EXPECT_DOUBLE_EQ(a(0, 1), 8);
  EXPECT_DOUBLE_EQ(a(1, 0), 12);
  EXPECT_DOUBLE_EQ(a(1, 1), 16);
}

TEST(BlasTest, GemmAgainstNaiveReference) {
  Rng rng(5);
  const Matrix a = Matrix::random(17, 23, rng);
  const Matrix b = Matrix::random(23, 11, rng);
  const Matrix c = matmul(a, b);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      double ref = 0;
      for (std::size_t k = 0; k < a.cols(); ++k) ref += a(i, k) * b(k, j);
      EXPECT_NEAR(c(i, j), ref, 1e-10);
    }
  }
}

TEST(BlasTest, GemmAlphaBeta) {
  Rng rng(6);
  const Matrix a = Matrix::random(8, 8, rng);
  const Matrix b = Matrix::random(8, 8, rng);
  Matrix c = Matrix::identity(8);
  gemm(2.0, a, b, 3.0, c);  // C = 2AB + 3I
  Matrix ref = matmul(a, b);
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = 0; j < 8; ++j) {
      EXPECT_NEAR(c(i, j), 2.0 * ref(i, j) + (i == j ? 3.0 : 0.0), 1e-10);
    }
  }
}

TEST(BlasTest, GemmIdentityIsNoop) {
  Rng rng(7);
  const Matrix a = Matrix::random(12, 12, rng);
  const Matrix c = matmul(a, Matrix::identity(12));
  EXPECT_LT(max_abs_diff(a, c), 1e-14);
}

TEST(BlasTest, GemmAssociativityProperty) {
  Rng rng(8);
  const Matrix a = Matrix::random(6, 7, rng);
  const Matrix b = Matrix::random(7, 5, rng);
  const Matrix c = Matrix::random(5, 4, rng);
  const Matrix left = matmul(matmul(a, b), c);
  const Matrix right = matmul(a, matmul(b, c));
  EXPECT_LT(max_abs_diff(left, right), 1e-10);
}

// ---- LU ----

struct SolveCase {
  std::size_t n;
  std::uint64_t seed;
};

class LuPropertyTest : public ::testing::TestWithParam<SolveCase> {};

TEST_P(LuPropertyTest, SolvesRandomSystems) {
  const auto [n, seed] = GetParam();
  Rng rng(seed);
  const Matrix a = Matrix::random_diag_dominant(n, rng);
  const Vector x_true = random_vector(n, rng);
  Vector b(n, 0.0);
  gemv(1.0, a, x_true, 0.0, b);

  auto x = dgesv(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_LT(max_abs_diff(x.value(), x_true), 1e-8 * static_cast<double>(n));
  EXPECT_LT(residual_inf(a, x.value(), b), 1e-8 * a.max_abs() * static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuPropertyTest,
                         ::testing::Values(SolveCase{1, 10}, SolveCase{2, 11}, SolveCase{3, 12},
                                           SolveCase{5, 13}, SolveCase{8, 14}, SolveCase{16, 15},
                                           SolveCase{33, 16}, SolveCase{64, 17},
                                           SolveCase{100, 18}, SolveCase{150, 19}));

TEST(LuTest, SingularMatrixRejected) {
  Matrix a(3, 3);  // all zeros
  auto lu = LuFactorization::factor(a);
  ASSERT_FALSE(lu.ok());
  EXPECT_EQ(lu.error().code, ErrorCode::kExecutionFailed);
}

TEST(LuTest, RankDeficientRejected) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 4;  // second row is 2x the first
  EXPECT_FALSE(LuFactorization::factor(a).ok());
}

TEST(LuTest, NonSquareRejected) {
  EXPECT_FALSE(LuFactorization::factor(Matrix(2, 3)).ok());
}

TEST(LuTest, RhsSizeMismatchRejected) {
  Rng rng(20);
  auto lu = LuFactorization::factor(Matrix::random_diag_dominant(4, rng));
  ASSERT_TRUE(lu.ok());
  EXPECT_FALSE(lu.value().solve(Vector(3)).ok());
}

TEST(LuTest, DeterminantOfKnownMatrix) {
  Matrix a(2, 2);
  a(0, 0) = 3;
  a(0, 1) = 8;
  a(1, 0) = 4;
  a(1, 1) = 6;
  auto lu = LuFactorization::factor(a);
  ASSERT_TRUE(lu.ok());
  EXPECT_NEAR(lu.value().determinant(), -14.0, 1e-10);
}

TEST(LuTest, DeterminantOfIdentityIsOne) {
  auto lu = LuFactorization::factor(Matrix::identity(5));
  ASSERT_TRUE(lu.ok());
  EXPECT_NEAR(lu.value().determinant(), 1.0, 1e-12);
}

TEST(LuTest, MultipleRhs) {
  Rng rng(21);
  const Matrix a = Matrix::random_diag_dominant(10, rng);
  const Matrix x_true = Matrix::random(10, 3, rng);
  const Matrix b = matmul(a, x_true);
  auto x = dgesv(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_LT(max_abs_diff(x.value(), x_true), 1e-8);
}

TEST(LuTest, PivotingHandlesZeroLeadingEntry) {
  Matrix a(2, 2);
  a(0, 0) = 0;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 0;  // permutation matrix: needs a pivot swap
  auto x = dgesv(a, Vector{2.0, 3.0});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR(x.value()[0], 3.0, 1e-12);
  EXPECT_NEAR(x.value()[1], 2.0, 1e-12);
}

TEST(LuTest, FlopsFormula) {
  EXPECT_NEAR(lu_flops(10), (2.0 / 3.0) * 1000 + 200, 1e-9);
  EXPECT_GT(lu_flops(100), lu_flops(99));
}

// ---- Cholesky ----

class CholeskyPropertyTest : public ::testing::TestWithParam<SolveCase> {};

TEST_P(CholeskyPropertyTest, SolvesSpdSystems) {
  const auto [n, seed] = GetParam();
  Rng rng(seed);
  const Matrix a = Matrix::random_spd(n, rng);
  const Vector x_true = random_vector(n, rng);
  Vector b(n, 0.0);
  gemv(1.0, a, x_true, 0.0, b);

  auto x = dposv(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_LT(max_abs_diff(x.value(), x_true), 1e-7 * static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskyPropertyTest,
                         ::testing::Values(SolveCase{1, 30}, SolveCase{4, 31}, SolveCase{9, 32},
                                           SolveCase{16, 33}, SolveCase{40, 34},
                                           SolveCase{80, 35}));

TEST(CholeskyTest, FactorReconstructs) {
  Rng rng(36);
  const Matrix a = Matrix::random_spd(12, rng);
  auto chol = CholeskyFactorization::factor(a);
  ASSERT_TRUE(chol.ok());
  const Matrix& l = chol.value().lower();
  const Matrix rebuilt = matmul(l, l.transposed());
  EXPECT_LT(max_abs_diff(a, rebuilt), 1e-9 * a.max_abs());
}

TEST(CholeskyTest, IndefiniteRejected) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 1;  // eigenvalues 3, -1
  auto chol = CholeskyFactorization::factor(a);
  ASSERT_FALSE(chol.ok());
  EXPECT_EQ(chol.error().code, ErrorCode::kExecutionFailed);
}

TEST(CholeskyTest, AgreesWithLu) {
  Rng rng(37);
  const Matrix a = Matrix::random_spd(20, rng);
  const Vector b = random_vector(20, rng);
  auto x_chol = dposv(a, b);
  auto x_lu = dgesv(a, b);
  ASSERT_TRUE(x_chol.ok());
  ASSERT_TRUE(x_lu.ok());
  EXPECT_LT(max_abs_diff(x_chol.value(), x_lu.value()), 1e-8);
}

// ---- QR ----

class QrPropertyTest : public ::testing::TestWithParam<SolveCase> {};

TEST_P(QrPropertyTest, SquareSystemsMatchLu) {
  const auto [n, seed] = GetParam();
  Rng rng(seed);
  const Matrix a = Matrix::random_diag_dominant(n, rng);
  const Vector b = random_vector(n, rng);
  auto x_qr = dgels(a, b);
  auto x_lu = dgesv(a, b);
  ASSERT_TRUE(x_qr.ok());
  ASSERT_TRUE(x_lu.ok());
  EXPECT_LT(max_abs_diff(x_qr.value(), x_lu.value()), 1e-7 * static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(Sizes, QrPropertyTest,
                         ::testing::Values(SolveCase{2, 40}, SolveCase{5, 41}, SolveCase{10, 42},
                                           SolveCase{25, 43}, SolveCase{50, 44}));

TEST(QrTest, OverdeterminedLeastSquaresNormalEquations) {
  // x solves A^T A x = A^T b; verify via the normal-equation residual.
  Rng rng(45);
  const Matrix a = Matrix::random(30, 5, rng);
  const Vector b = random_vector(30, rng);
  auto x = dgels(a, b);
  ASSERT_TRUE(x.ok());
  // r = A x - b must be orthogonal to the column space: A^T r == 0.
  Vector r(b);
  gemv(1.0, a, x.value(), -1.0, r);
  Vector atr(5, 0.0);
  gemv_t(1.0, a, r, 0.0, atr);
  for (const double v : atr) EXPECT_NEAR(v, 0.0, 1e-9);
}

TEST(QrTest, ExactFitRecovered) {
  Rng rng(46);
  const Matrix a = Matrix::random(20, 4, rng);
  const Vector x_true = random_vector(4, rng);
  Vector b(20, 0.0);
  gemv(1.0, a, x_true, 0.0, b);
  auto x = dgels(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_LT(max_abs_diff(x.value(), x_true), 1e-9);
}

TEST(QrTest, UnderdeterminedRejected) {
  EXPECT_FALSE(QrFactorization::factor(Matrix(3, 5)).ok());
}

TEST(QrTest, RankDeficientRejected) {
  Matrix a(4, 2);
  for (std::size_t i = 0; i < 4; ++i) {
    a(i, 0) = static_cast<double>(i + 1);
    a(i, 1) = 2.0 * static_cast<double>(i + 1);
  }
  EXPECT_FALSE(QrFactorization::factor(a).ok());
}

TEST(QrTest, RDiagonalNonZero) {
  Rng rng(47);
  auto qr = QrFactorization::factor(Matrix::random(10, 6, rng));
  ASSERT_TRUE(qr.ok());
  const Matrix r = qr.value().r();
  for (std::size_t i = 0; i < 6; ++i) EXPECT_NE(r(i, i), 0.0);
  // Strictly upper triangular below the diagonal.
  for (std::size_t j = 0; j < 6; ++j) {
    for (std::size_t i = j + 1; i < 6; ++i) EXPECT_DOUBLE_EQ(r(i, j), 0.0);
  }
}

TEST(QrTest, QtPreservesNorm) {
  Rng rng(48);
  const Matrix a = Matrix::random(12, 5, rng);
  auto qr = QrFactorization::factor(a);
  ASSERT_TRUE(qr.ok());
  const Vector b = random_vector(12, rng);
  auto y = qr.value().apply_qt(b);
  ASSERT_TRUE(y.ok());
  EXPECT_NEAR(nrm2(y.value()), nrm2(b), 1e-9) << "Q^T is orthogonal";
}

// ---- eigensolvers ----

TEST(EigenTest, DiagonalMatrixEigenvalues) {
  Matrix a(3, 3);
  a(0, 0) = 3;
  a(1, 1) = 1;
  a(2, 2) = 2;
  auto eig = jacobi_eigen(a);
  ASSERT_TRUE(eig.ok());
  ASSERT_EQ(eig.value().values.size(), 3u);
  EXPECT_NEAR(eig.value().values[0], 1.0, 1e-10);
  EXPECT_NEAR(eig.value().values[1], 2.0, 1e-10);
  EXPECT_NEAR(eig.value().values[2], 3.0, 1e-10);
}

TEST(EigenTest, Known2x2) {
  Matrix a(2, 2);
  a(0, 0) = 2;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 2;  // eigenvalues 1 and 3
  auto eig = jacobi_eigen(a);
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig.value().values[0], 1.0, 1e-10);
  EXPECT_NEAR(eig.value().values[1], 3.0, 1e-10);
}

class EigenPropertyTest : public ::testing::TestWithParam<SolveCase> {};

TEST_P(EigenPropertyTest, ResidualAndOrthogonality) {
  const auto [n, seed] = GetParam();
  Rng rng(seed);
  const Matrix a = Matrix::random_spd(n, rng);
  auto eig = jacobi_eigen(a);
  ASSERT_TRUE(eig.ok());
  const auto& [values, vectors] = eig.value();

  const double scale = a.max_abs();
  for (std::size_t j = 0; j < n; ++j) {
    // A v = lambda v
    Vector v(vectors.col(j), vectors.col(j) + n);
    Vector av(n, 0.0);
    gemv(1.0, a, v, 0.0, av);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(av[i], values[j] * v[i], 1e-7 * scale) << "pair " << j;
    }
    // SPD: all eigenvalues positive.
    EXPECT_GT(values[j], 0.0);
    // Ascending order.
    if (j > 0) EXPECT_LE(values[j - 1], values[j] + 1e-12);
  }
  // Trace equals eigenvalue sum.
  double trace = 0, sum = 0;
  for (std::size_t i = 0; i < n; ++i) {
    trace += a(i, i);
    sum += values[i];
  }
  EXPECT_NEAR(trace, sum, 1e-7 * scale * static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigenPropertyTest,
                         ::testing::Values(SolveCase{2, 50}, SolveCase{5, 51}, SolveCase{10, 52},
                                           SolveCase{20, 53}, SolveCase{40, 54}));

TEST(EigenTest, AsymmetricRejected) {
  Matrix a(2, 2);
  a(0, 1) = 1.0;  // a(1,0) stays 0
  EXPECT_FALSE(jacobi_eigen(a).ok());
}

TEST(EigenTest, PowerIterationFindsDominantPair) {
  Rng rng(55);
  const Matrix a = Matrix::random_spd(15, rng);
  auto full = jacobi_eigen(a);
  ASSERT_TRUE(full.ok());
  const double lambda_max = full.value().values.back();

  Rng rng2(56);
  auto pi = power_iteration(a, rng2);
  ASSERT_TRUE(pi.ok());
  EXPECT_TRUE(pi.value().converged);
  EXPECT_NEAR(pi.value().eigenvalue, lambda_max, 1e-6 * lambda_max);
}

// ---- tridiagonal ----

TEST(TridiagTest, KnownSystem) {
  // 2x2: [2 1; 1 2] x = [3; 3] -> x = [1; 1]
  auto x = solve_tridiagonal(Vector{1}, Vector{2, 2}, Vector{1}, Vector{3, 3});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR(x.value()[0], 1.0, 1e-12);
  EXPECT_NEAR(x.value()[1], 1.0, 1e-12);
}

TEST(TridiagTest, SingleUnknown) {
  auto x = solve_tridiagonal({}, Vector{4}, {}, Vector{8});
  ASSERT_TRUE(x.ok());
  EXPECT_DOUBLE_EQ(x.value()[0], 2.0);
}

class TridiagPropertyTest : public ::testing::TestWithParam<SolveCase> {};

TEST_P(TridiagPropertyTest, MatchesDenseSolve) {
  const auto [n, seed] = GetParam();
  Rng rng(seed);
  Vector sub(n - 1), diag(n), super(n - 1), rhs(n);
  for (std::size_t i = 0; i < n - 1; ++i) {
    sub[i] = rng.uniform(-1, 1);
    super[i] = rng.uniform(-1, 1);
  }
  for (std::size_t i = 0; i < n; ++i) {
    diag[i] = 4.0 + rng.uniform(0, 1);  // diagonally dominant
    rhs[i] = rng.uniform(-10, 10);
  }
  auto x = solve_tridiagonal(sub, diag, super, rhs);
  ASSERT_TRUE(x.ok());

  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    a(i, i) = diag[i];
    if (i > 0) a(i, i - 1) = sub[i - 1];
    if (i + 1 < n) a(i, i + 1) = super[i];
  }
  auto x_dense = dgesv(a, rhs);
  ASSERT_TRUE(x_dense.ok());
  EXPECT_LT(max_abs_diff(x.value(), x_dense.value()), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TridiagPropertyTest,
                         ::testing::Values(SolveCase{2, 60}, SolveCase{5, 61}, SolveCase{20, 62},
                                           SolveCase{100, 63}, SolveCase{500, 64}));

TEST(TridiagTest, SizeMismatchRejected) {
  EXPECT_FALSE(solve_tridiagonal(Vector{1, 2}, Vector{1, 2}, Vector{1}, Vector{1, 2}).ok());
  EXPECT_FALSE(solve_tridiagonal({}, {}, {}, {}).ok());
}

TEST(TridiagTest, ZeroPivotRejected) {
  EXPECT_FALSE(solve_tridiagonal(Vector{1}, Vector{0, 1}, Vector{1}, Vector{1, 1}).ok());
}

// ---- rating ----

TEST(RatingTest, ProducesPositiveRate) {
  const Rating r = linpack_rating(/*n=*/100, /*repeats=*/1);
  EXPECT_GT(r.mflops, 0.0);
  EXPECT_GT(r.seconds, 0.0);
  EXPECT_EQ(r.order, 100u);
}

TEST(RatingTest, DeterministicMatrixSolvable) {
  // Two ratings on the same host should land within an order of magnitude
  // (the kernel is deterministic; scheduling noise is bounded by best-of).
  const Rating a = linpack_rating(80, 2);
  const Rating b = linpack_rating(80, 2);
  EXPECT_LT(a.mflops / b.mflops, 10.0);
  EXPECT_GT(a.mflops / b.mflops, 0.1);
}

}  // namespace
}  // namespace ns::linalg
