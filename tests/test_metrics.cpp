// Metrics registry semantics and the METRICS_QUERY wire path.
//
// Covers the contracts DESIGN.md §10 promises: concurrent updates are lost-
// update-free, histogram quantiles sit within one log bucket (a factor of
// kBucketGrowth) of the true sample quantile, snapshots round-trip through
// proto::MetricsDump byte-for-byte, and a live cluster answers METRICS_QUERY
// with its registry contents.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include "client/client.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "proto/messages.hpp"
#include "serial/codec.hpp"
#include "testkit/cluster.hpp"

using namespace ns;

TEST(Metrics, ConcurrentUpdatesAreExact) {
  metrics::Registry reg;  // local instance: isolated from the process registry
  auto& counter = reg.counter("test.concurrent_total");
  auto& gauge = reg.gauge("test.concurrent_gauge");
  auto& hist = reg.histogram("test.concurrent_s");

  constexpr int kThreads = 8;
  constexpr int kOps = 100000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kOps; ++i) {
        counter.inc();
        gauge.add(1.0);
        hist.observe(1.0);
      }
    });
  }
  for (auto& t : threads) t.join();

  const auto expected = static_cast<std::uint64_t>(kThreads) * kOps;
  EXPECT_EQ(counter.value(), expected);
  // add() is a CAS loop; every sample is 1.0, so the sums are exact doubles.
  EXPECT_DOUBLE_EQ(gauge.value(), static_cast<double>(expected));
  EXPECT_EQ(hist.count(), expected);
  const auto snap = reg.snapshot();
  const auto* entry = snap.find("test.concurrent_s");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->count, expected);
  EXPECT_DOUBLE_EQ(entry->value, static_cast<double>(expected));
  EXPECT_DOUBLE_EQ(entry->min, 1.0);
  EXPECT_DOUBLE_EQ(entry->max, 1.0);
}

TEST(Metrics, HistogramPercentileWithinOneBucketOfReference) {
  metrics::Registry reg;
  auto& hist = reg.histogram("test.latency_s");
  // Deterministic sample set spread across ~3 decades, all well above
  // kBucketMin so the bucket-0 clamp never applies.
  std::vector<double> samples;
  for (int i = 1; i <= 1000; ++i) {
    samples.push_back(5e-4 * i);
  }
  for (const double v : samples) hist.observe(v);
  std::sort(samples.begin(), samples.end());

  for (const double q : {0.50, 0.95, 0.99}) {
    // Nearest-rank reference quantile over the raw samples.
    const auto rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(samples.size())));
    const double reference = samples[rank - 1];
    const double got = hist.percentile(q);
    // The histogram reports the holding bucket's upper bound: never below
    // the true quantile, never more than one bucket (kBucketGrowth) above.
    EXPECT_GE(got, reference * (1.0 - 1e-9)) << "q=" << q;
    EXPECT_LE(got, reference * metrics::kBucketGrowth * (1.0 + 1e-9)) << "q=" << q;
  }
  // q=0 degenerates to the minimum sample's bucket; empty histograms report 0.
  EXPECT_GE(hist.percentile(0.0), samples.front() * (1.0 - 1e-9));
  EXPECT_LE(hist.percentile(0.0), samples.front() * metrics::kBucketGrowth * (1.0 + 1e-9));
  EXPECT_DOUBLE_EQ(metrics::Histogram{}.percentile(0.5), 0.0);
}

TEST(Metrics, SnapshotPrefixFilters) {
  metrics::Registry reg;
  reg.counter("alpha.one_total").inc();
  reg.gauge("alpha.level").set(3.0);
  reg.counter("beta.two_total").inc();

  const auto snap = reg.snapshot("alpha.");
  EXPECT_EQ(snap.entries.size(), 2u);
  EXPECT_NE(snap.find("alpha.one_total"), nullptr);
  EXPECT_NE(snap.find("alpha.level"), nullptr);
  EXPECT_EQ(snap.find("beta.two_total"), nullptr);
}

TEST(Metrics, SnapshotRoundTripsThroughMetricsDump) {
  metrics::Registry reg;
  reg.counter("rt.events_total").inc(7);
  reg.gauge("rt.depth").set(2.5);
  auto& hist = reg.histogram("rt.wait_s");
  for (int i = 1; i <= 100; ++i) hist.observe(1e-3 * i);

  const metrics::Snapshot snap = reg.snapshot();
  proto::MetricsDump dump;
  dump.snapshot = snap;
  serial::Encoder enc;
  dump.encode(enc);
  const serial::Bytes bytes = enc.take();
  serial::Decoder dec(bytes);
  auto decoded = proto::MetricsDump::decode(dec);
  ASSERT_TRUE(decoded.ok()) << decoded.error().to_string();

  // Both dump formats are deterministic, so equality is byte-for-byte.
  EXPECT_EQ(decoded.value().snapshot.to_json(), snap.to_json());
  EXPECT_EQ(decoded.value().snapshot.to_text(), snap.to_text());
  const auto* entry = decoded.value().snapshot.find("rt.wait_s");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->count, 100u);
  EXPECT_DOUBLE_EQ(entry->percentile(0.95), snap.find("rt.wait_s")->percentile(0.95));
}

TEST(Metrics, MetricsQueryScrapesLiveCluster) {
  testkit::ClusterConfig config;
  config.servers = testkit::uniform_pool(2, /*workers=*/1);
  config.rating_base = 1000.0;
  auto cluster = testkit::TestCluster::start(std::move(config));
  ASSERT_TRUE(cluster.ok()) << cluster.error().to_string();

  auto client = cluster.value()->make_client();
  client::CallStats stats;
  auto out = client.netsl("simwork", {dsl::DataObject(std::int64_t{5})}, &stats);
  ASSERT_TRUE(out.ok()) << out.error().to_string();
  EXPECT_NE(stats.trace_id, trace::kNoTrace);
  EXPECT_FALSE(stats.spans.empty());

  // Scrape through the agent's connection handler. The in-process cluster
  // shares one registry, so client-, agent-, and server-side instruments
  // all appear in one dump.
  auto snap = cluster.value()->scrape_agent_metrics();
  ASSERT_TRUE(snap.ok()) << snap.error().to_string();
  const auto* calls = snap.value().find("client.calls_total");
  ASSERT_NE(calls, nullptr);
  EXPECT_GE(calls->count, 1u);
  const auto* requests = snap.value().find("server.requests_total");
  ASSERT_NE(requests, nullptr);
  EXPECT_GE(requests->count, 1u);
  const auto* compute = snap.value().find("span.server.compute_s");
  ASSERT_NE(compute, nullptr);
  EXPECT_GE(compute->count, 1u);
  // The agent refreshes its per-server directory gauges at scrape time.
  const auto* alive = snap.value().find("agent.alive_servers");
  ASSERT_NE(alive, nullptr);
  EXPECT_GE(alive->value, 1.0);
  const auto* breaker = snap.value().find("agent.server.server0.breaker");
  ASSERT_NE(breaker, nullptr);

  // Scraping a server exercises the same wire path through the server's
  // handler, with the prefix filter applied on the far side.
  auto server_snap = cluster.value()->scrape_server_metrics(0, "server.");
  ASSERT_TRUE(server_snap.ok()) << server_snap.error().to_string();
  ASSERT_FALSE(server_snap.value().entries.empty());
  for (const auto& entry : server_snap.value().entries) {
    EXPECT_EQ(entry.name.rfind("server.", 0), 0u) << entry.name;
  }
}
