// Chaos suite for the transport armor: every attack in the hostile-peer kit
// runs against a live cluster while a legitimate client keeps solving, and
// the armor must (a) keep legitimate goodput at or above 95%, (b) hold the
// configured budgets, and (c) count every shed/evict/kill decision in a
// net.guard.* metric — load-shedding an operator cannot see is
// indistinguishable from failure.
//
// Counters are process-global and cumulative across tests in this binary,
// so every assertion is on a before/after delta, never an absolute value.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <thread>
#include <vector>

#include "client/client.hpp"
#include "common/clock.hpp"
#include "common/metrics.hpp"
#include "net/reactor.hpp"
#include "net/socket.hpp"
#include "net/transport.hpp"
#include "testkit/cluster.hpp"
#include "testkit/hostile.hpp"

namespace ns {
namespace {

using dsl::DataObject;

template <typename Pred>
bool eventually(Pred pred, double timeout_s = 5.0) {
  const Deadline deadline(timeout_s);
  while (!deadline.expired()) {
    if (pred()) return true;
    sleep_seconds(0.005);
  }
  return pred();
}

std::uint64_t counter_value(const char* name) { return metrics::counter(name).value(); }

/// One full-speed sleep-mode server with the given armor; deadline-budgeted
/// clients so a BUSY-shed dial retries instead of surfacing as a failure —
/// the cooperative loop the armor is designed around.
Result<std::unique_ptr<testkit::TestCluster>> armored_cluster(net::GuardConfig guard) {
  testkit::ClusterConfig config;
  config.servers = testkit::uniform_pool(1, /*workers=*/2);
  config.servers[0].slowdown_mode = server::SlowdownMode::kSleep;
  config.servers[0].guard = guard;
  config.rating_base = 2000.0;
  config.io_timeout_s = 10.0;
  config.client_deadline_s = 10.0;
  return testkit::TestCluster::start(std::move(config));
}

/// Run `total` back-to-back solves while an attack rages; returns successes.
int legit_goodput(testkit::TestCluster& cluster, int total) {
  auto client = cluster.make_client();
  int ok = 0;
  for (int i = 0; i < total; ++i) {
    auto result = client.netsl("simwork", {DataObject(std::int64_t{5})});
    if (result.ok()) ++ok;
  }
  return ok;
}

// ---- slowloris: byte-drip payloads must die by progress deadline ----

TEST(HostileTest, SlowlorisIsKilledAndLegitGoodputHolds) {
  net::GuardConfig guard;
  guard.frame_progress_timeout_s = 0.5;
  auto cluster = armored_cluster(guard);
  ASSERT_TRUE(cluster.ok()) << cluster.error().to_string();

  const std::uint64_t kills_before = counter_value("net.guard.progress_kill_total");

  testkit::AttackConfig attack;
  attack.target = cluster.value()->server(0).endpoint();
  attack.duration_s = 2.5;
  attack.concurrency = 4;
  attack.drip_interval_s = 0.05;
  std::thread attacker([&] { testkit::run_slowloris(attack); });

  const int total = 40;
  const int ok = legit_goodput(*cluster.value(), total);
  attacker.join();

  EXPECT_GE(ok, total * 95 / 100) << "slowloris degraded legitimate goodput";
  // Every dripping connection must eventually hit the progress deadline:
  // each byte is "activity" so only the frame-completion clock can fire.
  EXPECT_GE(counter_value("net.guard.progress_kill_total"), kills_before + 1);
}

// ---- giant frame: rejected at header-decode time, before any buffering ----

TEST(HostileTest, GiantFrameClaimIsRejectedWithoutBuffering) {
  net::GuardConfig guard;
  guard.max_frame_bytes = 1u << 20;  // this server does metadata-sized work
  auto cluster = armored_cluster(guard);
  ASSERT_TRUE(cluster.ok()) << cluster.error().to_string();
  auto& server = cluster.value()->server(0);

  const std::uint64_t oversized_before = counter_value("net.guard.oversized_total");

  testkit::AttackConfig attack;
  attack.target = server.endpoint();
  attack.duration_s = 2.0;
  attack.concurrency = 4;
  attack.giant_frame_len = 512u << 20;  // claims 512 MiB per header
  std::thread attacker([&] { testkit::run_giant_frame(attack); });

  // While headers claiming gigabytes arrive, the server must never buffer
  // anything near the claimed sizes: rejection happens before allocation.
  std::size_t max_buffered = 0;
  const Deadline watch(2.0);
  while (!watch.expired()) {
    max_buffered = std::max(max_buffered, server.transport_buffered_bytes());
    sleep_seconds(0.01);
  }
  const int ok = legit_goodput(*cluster.value(), 20);
  attacker.join();

  EXPECT_GE(counter_value("net.guard.oversized_total"), oversized_before + 1);
  EXPECT_LT(max_buffered, std::size_t{8} << 20)
      << "oversized claims must cost kHeaderSize, not an allocation";
  EXPECT_GE(ok, 19) << "giant-frame bomb degraded legitimate goodput";
}

// ---- garbage fuzzer: close, never crash, never misframe later traffic ----

TEST(HostileTest, GarbagePeerNeverDisruptsLegitTraffic) {
  auto cluster = armored_cluster(net::GuardConfig{});
  ASSERT_TRUE(cluster.ok()) << cluster.error().to_string();

  testkit::AttackConfig attack;
  attack.target = cluster.value()->server(0).endpoint();
  attack.duration_s = 2.5;
  attack.concurrency = 4;
  attack.seed = 0xfeedface;
  std::thread attacker([&] { testkit::run_garbage(attack); });

  const int total = 40;
  const int ok = legit_goodput(*cluster.value(), total);
  attacker.join();

  EXPECT_GE(ok, total * 95 / 100) << "garbage fuzzer degraded legitimate goodput";
}

// ---- connection flood: cap held, idle LRU evicted, sheds counted ----

TEST(HostileTest, ConnectionFloodIsCappedWithLruEviction) {
  net::GuardConfig guard;
  guard.max_connections = 16;
  guard.retry_after_s = 0.1;
  auto cluster = armored_cluster(guard);
  ASSERT_TRUE(cluster.ok()) << cluster.error().to_string();
  auto& server = cluster.value()->server(0);

  const std::uint64_t evicted_before = counter_value("net.guard.evicted_total");
  const std::uint64_t shed_before = counter_value("net.guard.accept_shed_total");

  testkit::AttackConfig attack;
  attack.target = server.endpoint();
  attack.duration_s = 2.5;
  attack.concurrency = 4;
  attack.conns_per_thread = 16;  // 64 wanted vs a cap of 16
  std::thread attacker([&] { testkit::run_connection_flood(attack); });

  // The cap is a hard invariant, sampled throughout the flood. (+1 slack:
  // the count is taken between accept and a shed decision.)
  std::size_t max_conns = 0;
  const Deadline watch(2.0);
  while (!watch.expired()) {
    max_conns = std::max(max_conns, server.transport_connections());
    sleep_seconds(0.005);
  }
  const int total = 30;
  const int ok = legit_goodput(*cluster.value(), total);
  attacker.join();

  EXPECT_LE(max_conns, guard.max_connections + 1) << "connection cap breached";
  const std::uint64_t evicted = counter_value("net.guard.evicted_total") - evicted_before;
  const std::uint64_t shed = counter_value("net.guard.accept_shed_total") - shed_before;
  EXPECT_GE(evicted + shed, 1u) << "flood absorbed without any counted decision";
  EXPECT_GE(ok, total * 95 / 100)
      << "legit client starved by the flood (evicted=" << evicted << " shed=" << shed << ")";
}

// ---- half-open storm: partial headers pin fds until the deadline reaps ----

TEST(HostileTest, HalfOpenStormIsReaped) {
  net::GuardConfig guard;
  guard.frame_progress_timeout_s = 0.5;
  auto cluster = armored_cluster(guard);
  ASSERT_TRUE(cluster.ok()) << cluster.error().to_string();
  auto& server = cluster.value()->server(0);
  const std::size_t baseline = server.transport_connections();

  const std::uint64_t kills_before = counter_value("net.guard.progress_kill_total");

  testkit::AttackConfig attack;
  attack.target = server.endpoint();
  attack.duration_s = 2.0;
  attack.concurrency = 4;
  attack.conns_per_thread = 8;
  testkit::AttackStats stats = testkit::run_half_open(attack);
  EXPECT_GT(stats.connections, 0u);

  // A half-open socket sent half a header: unconsumed bytes with no frame
  // completion, so the progress deadline must reap every one of them.
  EXPECT_GE(counter_value("net.guard.progress_kill_total"), kills_before + 1);
  EXPECT_TRUE(eventually(
      [&] { return server.transport_connections() <= baseline + 2; }, 5.0))
      << "abandoned half-open connections still pinned after the storm: "
      << server.transport_connections();

  EXPECT_GE(legit_goodput(*cluster.value(), 10), 10);
}

// ---- slow reader: a peer that never reads its replies hits the write budget --

constexpr std::uint16_t kBlobReq = 61;
constexpr std::uint16_t kBlobRep = 62;

/// Minimal reactor harness: every request is answered with a 64 KiB blob —
/// the amplification shape (tiny request, fat reply) that makes a non-reading
/// peer dangerous.
class BlobServer {
 public:
  explicit BlobServer(net::GuardConfig guard) {
    net::ReactorConfig config;
    config.guard = guard;
    auto listener = net::TcpListener::bind({"127.0.0.1", 0});
    EXPECT_TRUE(listener.ok());
    endpoint_ = listener.value().endpoint();
    auto status = reactor_.start(
        std::move(listener).value(),
        [](const net::ReactorConnPtr& conn, net::Message&& msg) {
          if (msg.type != kBlobReq) return false;
          return conn->send(kBlobRep, serial::Bytes(64 << 10, 0x5a)).ok();
        },
        config);
    EXPECT_TRUE(status.ok());
  }
  ~BlobServer() { reactor_.stop(); }

  const net::Endpoint& endpoint() const { return endpoint_; }

 private:
  net::Endpoint endpoint_;
  net::Reactor reactor_;
};

TEST(HostileTest, SlowReaderTripsWriteBudgetAndIsDropped) {
  net::GuardConfig guard;
  guard.max_frame_bytes = 1u << 20;
  guard.max_conn_buffer_bytes = 512u << 10;  // budget: half a MiB queued max
  BlobServer server(guard);

  const std::uint64_t overflow_before = counter_value("net.guard.conn_overflow_total");

  // Request 8 MiB of replies and read none of them: the kernel socket buffer
  // fills, the write queue grows past the budget, and the armor must drop us
  // rather than buffer without bound.
  auto peer = net::TcpConnection::connect(server.endpoint());
  ASSERT_TRUE(peer.ok());
  for (int i = 0; i < 128; ++i) {
    if (!net::send_message(peer.value(), kBlobReq, serial::Bytes{1}).ok()) break;
  }
  ASSERT_TRUE(eventually(
      [&] { return counter_value("net.guard.conn_overflow_total") > overflow_before; }))
      << "non-reading peer never hit the write budget";
  peer.value().close();

  // The reactor itself must be unharmed: a well-behaved connection round-trips.
  auto good = net::TcpConnection::connect(server.endpoint());
  ASSERT_TRUE(good.ok());
  ASSERT_TRUE(net::send_message(good.value(), kBlobReq, serial::Bytes{2}).ok());
  auto reply = net::recv_message(good.value(), 5.0);
  ASSERT_TRUE(reply.ok()) << reply.error().to_string();
  EXPECT_EQ(reply.value().type, kBlobRep);
}

// ---- fd pressure: EMFILE on accept must shed, count, and recover ----
// (Own gtest suite name: CI runs it under a lowered `ulimit -n`.)

std::size_t open_fd_count() {
  std::size_t count = 0;
  for (const auto& entry : std::filesystem::directory_iterator("/proc/self/fd")) {
    (void)entry;
    ++count;
  }
  return count;
}

/// Restore RLIMIT_NOFILE on every exit path — a leaked low limit would make
/// every later test in the binary fail mysteriously.
struct RlimitGuard {
  rlimit saved{};
  RlimitGuard() { getrlimit(RLIMIT_NOFILE, &saved); }
  ~RlimitGuard() { setrlimit(RLIMIT_NOFILE, &saved); }
};

TEST(FdPressure, EmfileAcceptShedsCountsAndRecovers) {
  BlobServer server(net::GuardConfig{});

  const std::uint64_t errors_before = counter_value("net.guard.accept_errors_total");

  // Pre-create client sockets while fds are plentiful; connect() later needs
  // no new descriptor, so the handshake lands in the server backlog even
  // after the process is starved — forcing accept4 itself to fail EMFILE.
  std::vector<int> socks;
  for (int i = 0; i < 4; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    ASSERT_GE(fd, 0);
    socks.push_back(fd);
  }

  RlimitGuard restore;
  {
    rlimit squeezed = restore.saved;
    squeezed.rlim_cur = open_fd_count();  // zero headroom for new fds
    ASSERT_EQ(setrlimit(RLIMIT_NOFILE, &squeezed), 0);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server.endpoint().port);
    ASSERT_EQ(inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    for (const int fd : socks) {
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
    }

    // The reserve-fd trick must let the reactor drain the backlog (close
    // reserve, accept, close victim, reopen) instead of wedging or spinning.
    EXPECT_TRUE(eventually([&] {
      return counter_value("net.guard.accept_errors_total") > errors_before;
    })) << "accept under EMFILE was never classified and counted";

    setrlimit(RLIMIT_NOFILE, &restore.saved);
  }
  for (const int fd : socks) ::close(fd);

  // With the limit restored the endpoint must serve as if nothing happened.
  auto good = net::TcpConnection::connect(server.endpoint());
  ASSERT_TRUE(good.ok());
  ASSERT_TRUE(net::send_message(good.value(), kBlobReq, serial::Bytes{3}).ok());
  auto reply = net::recv_message(good.value(), 5.0);
  ASSERT_TRUE(reply.ok()) << reply.error().to_string();
  EXPECT_EQ(reply.value().type, kBlobRep);
}

}  // namespace
}  // namespace ns
