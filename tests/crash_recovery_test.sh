#!/bin/sh
# True multi-process crash-recovery test: a journaling server daemon is
# SIGKILLed mid-solve (a real kill -9, not a cooperative shutdown), restarted
# on the same port with the same data_dir, and must replay its write-ahead
# journal, resume the job from its last checkpoint, and hand the original
# submitter the answer via PROBE/WAIT — no resubmission.
#
# Usage: crash_recovery_test.sh <build-examples-dir>
set -eu

BIN="$1"
PORT=$((21000 + $$ % 20000))
SPORT=$((PORT + 1))
LOG=$(mktemp -d)
trap 'kill $AGENT_PID $S1_PID 2>/dev/null || true; rm -rf "$LOG"' EXIT

wait_alive_servers() {
    want=$1
    deadline=$(( $(date +%s) + 30 ))
    while [ "$(date +%s)" -lt "$deadline" ]; do
        count=$("$BIN/netsolve_client" agent_port=$PORT cmd=list 2>/dev/null \
                | sed -n 's/^agent: \([0-9][0-9]*\) alive servers.*/\1/p')
        if [ "${count:-0}" -ge "$want" ]; then
            return 0
        fi
        sleep 0.1
    done
    echo "timed out waiting for $want alive servers" >&2
    return 1
}

# Poll the server's PROBE until job $2's iteration passes $1 (Mflop done).
wait_iteration() {
    want=$1
    id=${2:-4501}
    deadline=$(( $(date +%s) + 30 ))
    while [ "$(date +%s)" -lt "$deadline" ]; do
        it=$("$BIN/netsolve_client" port=$SPORT cmd=probe id=$id 2>/dev/null \
             | sed -n 's/.*iteration=\([0-9][0-9]*\).*/\1/p')
        if [ "${it:-0}" -ge "$want" ]; then
            echo "job $id at iteration $it"
            return 0
        fi
        sleep 0.1
    done
    echo "timed out waiting for iteration $want on job $id" >&2
    return 1
}

"$BIN/netsolve_agent" port=$PORT runtime=120 > "$LOG/agent.log" 2>&1 &
AGENT_PID=$!

start_server() {
    "$BIN/netsolve_server" name=alpha agent_port=$PORT port=$SPORT rating=800 \
        data_dir="$LOG/data" checkpoint_interval=25 runtime=120 \
        > "$LOG/s1_$1.log" 2>&1 &
    S1_PID=$!
}

start_server first
wait_alive_servers 1

echo "== submit a long durable job (simwork 2000 Mflop ~ 2.5 s) =="
"$BIN/netsolve_client" port=$SPORT cmd=submit id=4501 mflop=2000

echo "== wait until the job is half done (checkpoints on disk) =="
wait_iteration 1000

echo "== SIGKILL the server mid-solve =="
kill -9 $S1_PID
wait $S1_PID 2>/dev/null || true

echo "== restart on the same port with the same journal =="
start_server second
wait_alive_servers 1

echo "== reattach: the job must finish from its checkpoint, not from scratch =="
"$BIN/netsolve_client" port=$SPORT cmd=probe id=4501 wait=30

echo "== journal metrics on the revived server =="
"$BIN/netsolve_client" agent_port=$SPORT cmd=metrics prefix=server.jobs_recovered
recovered=$("$BIN/netsolve_client" agent_port=$SPORT cmd=metrics \
            prefix=server.jobs_recovered_total 2>/dev/null \
            | sed -n 's/.*server\.jobs_recovered_total[^0-9]*\([0-9][0-9]*\).*/\1/p' | head -1)
if [ "${recovered:-0}" -lt 1 ]; then
    echo "server did not report a recovered job (got '${recovered:-}')" >&2
    exit 1
fi

# ---- compaction kill windows ----
#
# The journal rewrite (tmp + rename swap) has two one-sided crash windows:
# dying *before* the rename must leave the old journal authoritative (plus a
# stray .tmp), dying *after* must leave the freshly compacted journal
# complete. NS_CRASH_POINT makes the daemon _exit(137) at the named point
# (see common/vfs.hpp); a tiny journal_compact threshold plus a short job's
# completion forces a compaction while a long job is still mid-solve.

# The server's own port answers probes (a stale agent record can't fake this).
wait_server_up() {
    deadline=$(( $(date +%s) + 30 ))
    while [ "$(date +%s)" -lt "$deadline" ]; do
        if "$BIN/netsolve_client" port=$SPORT cmd=probe id=1 >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.1
    done
    echo "server never came up on port $SPORT" >&2
    return 1
}

compaction_window() {
    point=$1     # journal.compact.before_rename | journal.compact.after_rename
    dir=$2       # fresh data_dir per window
    long_id=$3
    short_id=$(( long_id + 1 ))

    echo "== compaction kill window: $point =="
    # SKIP=1 survives the startup compaction; the first *runtime* compaction
    # (tripped by the short job's completion) dies at the window.
    NS_CRASH_POINT=$point NS_CRASH_POINT_SKIP=1 "$BIN/netsolve_server" \
        name=alpha agent_port=$PORT \
        port=$SPORT rating=800 data_dir="$LOG/$dir" checkpoint_interval=5 \
        journal_compact=1500 runtime=120 > "$LOG/${dir}_arm.log" 2>&1 &
    S1_PID=$!
    wait_server_up

    "$BIN/netsolve_client" port=$SPORT cmd=submit id=$long_id mflop=2000
    wait_iteration 300 $long_id
    # A short job's completion trips maybe_compact; by now the long job's
    # checkpoint records have pushed the journal well past 1500 bytes.
    "$BIN/netsolve_client" port=$SPORT cmd=submit id=$short_id mflop=10 || true

    rc=0
    wait $S1_PID || rc=$?
    if [ "$rc" -ne 137 ]; then
        echo "server did not die at $point (exit $rc)" >&2
        exit 1
    fi
    echo "server died at $point (exit 137), as scripted"

    "$BIN/netsolve_server" name=alpha agent_port=$PORT port=$SPORT rating=800 \
        data_dir="$LOG/$dir" checkpoint_interval=5 journal_compact=1500 \
        runtime=120 > "$LOG/${dir}_replay.log" 2>&1 &
    S1_PID=$!
    wait_server_up

    echo "== the long job must finish from the surviving journal side =="
    "$BIN/netsolve_client" port=$SPORT cmd=probe id=$long_id wait=30

    recovered=$("$BIN/netsolve_client" agent_port=$SPORT cmd=metrics \
                prefix=server.jobs_recovered_total 2>/dev/null \
                | sed -n 's/.*server\.jobs_recovered_total[^0-9]*\([0-9][0-9]*\).*/\1/p' | head -1)
    if [ "${recovered:-0}" -lt 1 ]; then
        echo "no recovered job after $point crash (got '${recovered:-}')" >&2
        exit 1
    fi

    kill $S1_PID 2>/dev/null || true
    wait $S1_PID 2>/dev/null || true
}

# Phase 1's revived server still owns the port; retire it first.
kill $S1_PID 2>/dev/null || true
wait $S1_PID 2>/dev/null || true

compaction_window journal.compact.before_rename data_before 4601
compaction_window journal.compact.after_rename  data_after  4701

echo "CRASH_RECOVERY_TEST_PASSED"
