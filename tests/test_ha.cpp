// Agent high availability, end to end: client failover across an agent
// list, degraded direct-to-server calls from the staleness-bounded candidate
// cache when every agent is down, background server re-registration after an
// agent restart, anti-entropy bootstrap from federation peers, per-peer
// health reporting, and overload rejections landing on the healthy pool.
#include <gtest/gtest.h>

#include <vector>

#include "common/clock.hpp"
#include "common/metrics.hpp"
#include "testkit/cluster.hpp"

namespace ns {
namespace {

using dsl::DataObject;

// simwork argument sized so a call sleeps ~10 ms at the fixed rating below.
constexpr std::int64_t kWork = 5;
constexpr double kRating = 500.0;

std::vector<DataObject> work_args() { return {DataObject(kWork)}; }

// ---- client failover across agents ----

TEST(HaFailoverTest, BurstSurvivesPrimaryAgentKill) {
  testkit::ClusterConfig config;
  config.servers = testkit::uniform_pool(4);
  config.agent_count = 2;
  config.rating_base = kRating;
  auto cluster = testkit::TestCluster::start(std::move(config));
  ASSERT_TRUE(cluster.ok()) << cluster.error().to_string();

  const auto failovers_before = metrics::counter("client.agent_failover_total").value();
  auto client = cluster.value()->make_client();

  // First wave binds the client to the primary agent; the kill lands while
  // work is in flight, so the second wave's queries hit a dead socket and
  // must fail over to the surviving agent.
  std::vector<client::RequestHandle> handles;
  for (int i = 0; i < 20; ++i) handles.push_back(client.netsl_nb("simwork", work_args()));
  cluster.value()->kill_agent(0);
  for (int i = 0; i < 20; ++i) handles.push_back(client.netsl_nb("simwork", work_args()));

  int ok = 0;
  for (auto& handle : handles) {
    auto out = handle.wait();
    EXPECT_TRUE(out.ok()) << out.error().to_string();
    if (out.ok()) ++ok;
  }
  EXPECT_EQ(ok, 40) << "an agent death must be invisible to callers";
  EXPECT_GE(metrics::counter("client.agent_failover_total").value(), failovers_before + 1);
}

// ---- degraded direct-to-server calls from the candidate cache ----

TEST(HaDegradedTest, CachedCallsSurviveTotalAgentOutage) {
  testkit::ClusterConfig config;
  config.servers = testkit::uniform_pool(2);
  config.rating_base = kRating;
  auto cluster = testkit::TestCluster::start(std::move(config));
  ASSERT_TRUE(cluster.ok()) << cluster.error().to_string();

  auto client = cluster.value()->make_client();
  // Warm the per-problem candidate cache while the agent is alive.
  ASSERT_TRUE(client.netsl("simwork", work_args()).ok());

  cluster.value()->kill_agent(0);

  // The servers are still up; a previously resolved problem keeps working
  // direct-to-server off the cached ranked list.
  const auto degraded_before = metrics::counter("client.degraded_calls_total").value();
  client::CallStats stats;
  auto out = client.netsl("simwork", work_args(), &stats);
  ASSERT_TRUE(out.ok()) << out.error().to_string();
  EXPECT_TRUE(stats.degraded);
  EXPECT_GE(metrics::counter("client.degraded_calls_total").value(), degraded_before + 1);

  // A problem never resolved before has no cached candidates: with every
  // agent down it must fail fast with the agent-unavailable verdict.
  auto cold = client.netsl("busywork", work_args());
  ASSERT_FALSE(cold.ok());
  EXPECT_EQ(cold.error().code, ErrorCode::kAgentUnavailable);
}

// ---- server re-registration heals a restarted agent ----

TEST(HaReregisterTest, RestartedAgentRelearnsServerPool) {
  testkit::ClusterConfig config;
  config.servers = testkit::uniform_pool(2);
  config.rating_base = kRating;
  auto cluster = testkit::TestCluster::start(std::move(config));
  ASSERT_TRUE(cluster.ok()) << cluster.error().to_string();

  cluster.value()->kill_agent(0);
  ASSERT_TRUE(cluster.value()->restart_agent(0).ok());

  // The restarted agent has an empty registry until the servers' background
  // re-registration (0.5 s cadence in the testkit) finds it again.
  const Deadline deadline(10.0);
  while (cluster.value()->agent(0).stats().alive_servers < 2 && !deadline.expired()) {
    sleep_seconds(0.02);
  }
  EXPECT_EQ(cluster.value()->agent(0).stats().alive_servers, 2u)
      << "servers must re-register with a rebooted agent without operator help";

  auto client = cluster.value()->make_client();
  auto out = client.netsl("simwork", work_args());
  EXPECT_TRUE(out.ok()) << out.error().to_string();
}

// ---- anti-entropy bootstrap from a federation peer ----

TEST(HaBootstrapTest, RestartedAgentWarmsFromPeer) {
  testkit::ClusterConfig config;
  config.servers = testkit::uniform_pool(2);
  // Re-registration is deliberately glacial so the only way the restarted
  // agent can know the pool this fast is the startup snapshot pull.
  for (auto& spec : config.servers) spec.reregister_period_s = 60.0;
  config.agent_count = 2;
  config.rating_base = kRating;
  auto cluster = testkit::TestCluster::start(std::move(config));
  ASSERT_TRUE(cluster.ok()) << cluster.error().to_string();

  const auto bootstrap_before = metrics::counter("agent.bootstrap_entries_total").value();
  cluster.value()->kill_agent(0);
  ASSERT_TRUE(cluster.value()->restart_agent(0).ok());

  const Deadline deadline(2.0);
  while (cluster.value()->agent(0).stats().alive_servers < 1 && !deadline.expired()) {
    sleep_seconds(0.01);
  }
  EXPECT_GE(cluster.value()->agent(0).stats().alive_servers, 1u)
      << "bootstrap must warm the registry from the surviving peer";
  EXPECT_GE(metrics::counter("agent.bootstrap_entries_total").value(), bootstrap_before + 1);
}

// ---- per-peer federation health in AgentStats ----

TEST(HaPeerHealthTest, AgentStatsExposePeerLiveness) {
  testkit::ClusterConfig config;
  config.servers = testkit::uniform_pool(1);
  config.agent_count = 2;
  config.rating_base = kRating;
  auto cluster = testkit::TestCluster::start(std::move(config));
  ASSERT_TRUE(cluster.ok()) << cluster.error().to_string();

  const auto peer_alive = [&](bool want) {
    const Deadline deadline(5.0);
    while (!deadline.expired()) {
      const auto stats = cluster.value()->agent(0).stats();
      if (stats.peers.size() == 1 && stats.peers.front().alive == want) return true;
      sleep_seconds(0.02);
    }
    return false;
  };

  EXPECT_TRUE(peer_alive(true)) << "periodic sync must mark the peer alive";
  cluster.value()->kill_agent(1);
  EXPECT_TRUE(peer_alive(false)) << "failed syncs must mark the peer down";
}

// ---- overload rejections land on the healthy pool ----

TEST(HaOverloadTest, SaturatedServerRejectsOntoHealthyPool) {
  testkit::ClusterConfig config;
  testkit::ClusterServerSpec tiny;
  tiny.name = "tiny";
  tiny.workers = 1;
  tiny.max_queue = 1;
  // Stale reports + no pending counting keep the agent ranking the (full)
  // tiny server first, so admission control has to do the redirecting.
  tiny.report_period_s = 30.0;
  testkit::ClusterServerSpec big;
  big.name = "big";
  big.workers = 4;
  big.speed = 0.5;  // slower per-job => MCT prefers tiny while it looks idle
  big.report_period_s = 30.0;
  config.servers = {tiny, big};
  config.count_pending = false;
  config.rating_base = kRating;
  auto cluster = testkit::TestCluster::start(std::move(config));
  ASSERT_TRUE(cluster.ok()) << cluster.error().to_string();

  const auto rejected_before = metrics::counter("server.rejected_total").value();
  const auto retries_before = metrics::counter("client.retries_total").value();

  auto client = cluster.value()->make_client();
  std::vector<client::RequestHandle> handles;
  for (int i = 0; i < 10; ++i) handles.push_back(client.netsl_nb("simwork", work_args()));
  for (auto& handle : handles) {
    auto out = handle.wait();
    EXPECT_TRUE(out.ok()) << out.error().to_string();
  }

  EXPECT_GE(metrics::counter("server.rejected_total").value(), rejected_before + 1)
      << "the saturated server must shed with SERVER_OVERLOADED, not queue";
  EXPECT_GE(metrics::counter("client.retries_total").value(), retries_before + 1)
      << "rejected work must be retried, landing on the healthy server";
}

}  // namespace
}  // namespace ns
