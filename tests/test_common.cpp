// Unit tests for ns_common: errors/results, strings, config, rng, clock,
// blocking queue.
#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "common/config.hpp"
#include "common/error.hpp"
#include "common/log.hpp"
#include "common/queue.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"

namespace ns {
namespace {

// ---- Result / Error ----

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = make_error(ErrorCode::kTimeout, "too slow");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kTimeout);
  EXPECT_EQ(r.error().message, "too slow");
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, ValueThrowsOnError) {
  Result<int> r = make_error(ErrorCode::kInternal, "boom");
  EXPECT_THROW((void)r.value(), BadResultAccess);
}

TEST(ResultTest, VoidSpecialization) {
  Status ok = ok_status();
  EXPECT_TRUE(ok.ok());
  Status bad = make_error(ErrorCode::kProtocol, "bad");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, ErrorCode::kProtocol);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

TEST(ErrorTest, ToStringIncludesCodeAndMessage) {
  const Error e = make_error(ErrorCode::kNoServer, "nothing alive");
  EXPECT_EQ(e.to_string(), "NO_SERVER: nothing alive");
  const Error bare = make_error(ErrorCode::kTimeout);
  EXPECT_EQ(bare.to_string(), "TIMEOUT");
}

TEST(ErrorTest, EveryCodeHasAName) {
  for (int c = 0; c <= static_cast<int>(ErrorCode::kInternal); ++c) {
    EXPECT_NE(error_code_name(static_cast<ErrorCode>(c)), "UNKNOWN") << "code " << c;
  }
}

TEST(ErrorTest, RetryabilityClassification) {
  EXPECT_TRUE(is_retryable(ErrorCode::kConnectFailed));
  EXPECT_TRUE(is_retryable(ErrorCode::kConnectionClosed));
  EXPECT_TRUE(is_retryable(ErrorCode::kTimeout));
  EXPECT_TRUE(is_retryable(ErrorCode::kServerFailure));
  EXPECT_TRUE(is_retryable(ErrorCode::kServerOverloaded));
  EXPECT_FALSE(is_retryable(ErrorCode::kBadArguments));
  EXPECT_FALSE(is_retryable(ErrorCode::kUnknownProblem));
  EXPECT_FALSE(is_retryable(ErrorCode::kExecutionFailed));
  EXPECT_FALSE(is_retryable(ErrorCode::kProtocol));
}

// ---- strings ----

TEST(StringsTest, Trim) {
  EXPECT_EQ(strings::trim("  hi  "), "hi");
  EXPECT_EQ(strings::trim("hi"), "hi");
  EXPECT_EQ(strings::trim("\t\n hi \r"), "hi");
  EXPECT_EQ(strings::trim("   "), "");
  EXPECT_EQ(strings::trim(""), "");
}

TEST(StringsTest, SplitPreservesEmptyFields) {
  const auto parts = strings::split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, SplitWsSkipsRuns) {
  const auto parts = strings::split_ws("  a \t b\n c  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringsTest, PrefixSuffix) {
  EXPECT_TRUE(strings::starts_with("foobar", "foo"));
  EXPECT_FALSE(strings::starts_with("fo", "foo"));
  EXPECT_TRUE(strings::ends_with("foobar", "bar"));
  EXPECT_FALSE(strings::ends_with("ar", "bar"));
}

TEST(StringsTest, ParseIntStrict) {
  EXPECT_EQ(strings::parse_int("42").value(), 42);
  EXPECT_EQ(strings::parse_int("-7").value(), -7);
  EXPECT_EQ(strings::parse_int("  42  ").value(), 42);
  EXPECT_FALSE(strings::parse_int("42x").has_value());
  EXPECT_FALSE(strings::parse_int("").has_value());
  EXPECT_FALSE(strings::parse_int("4.2").has_value());
}

TEST(StringsTest, ParseDoubleStrict) {
  EXPECT_DOUBLE_EQ(strings::parse_double("3.5").value(), 3.5);
  EXPECT_DOUBLE_EQ(strings::parse_double("-1e3").value(), -1000.0);
  EXPECT_FALSE(strings::parse_double("abc").has_value());
  EXPECT_FALSE(strings::parse_double("1.5junk").has_value());
}

TEST(StringsTest, Formatters) {
  EXPECT_EQ(strings::format_bytes(512), "512.00 B");
  EXPECT_EQ(strings::format_bytes(2048), "2.00 KiB");
  EXPECT_NE(strings::format_seconds(0.5).find("ms"), std::string::npos);
  EXPECT_NE(strings::format_seconds(2.0).find("s"), std::string::npos);
  EXPECT_NE(strings::format_seconds(5e-6).find("us"), std::string::npos);
}

// ---- config ----

TEST(ConfigTest, ParseBasics) {
  auto cfg = Config::parse("a = 1\nb=two\n# comment\n\nc = 3.5 # trailing\n");
  ASSERT_TRUE(cfg.ok());
  EXPECT_EQ(cfg.value().get_int_or("a", 0), 1);
  EXPECT_EQ(cfg.value().get_or("b", ""), "two");
  EXPECT_DOUBLE_EQ(cfg.value().get_double_or("c", 0), 3.5);
  EXPECT_FALSE(cfg.value().contains("d"));
}

TEST(ConfigTest, ParseErrors) {
  EXPECT_FALSE(Config::parse("novalue\n").ok());
  EXPECT_FALSE(Config::parse("= empty key\n").ok());
}

TEST(ConfigTest, Bools) {
  auto cfg = Config::parse("t1=true\nt2=1\nt3=yes\nf1=false\nf2=off\njunk=maybe\n");
  ASSERT_TRUE(cfg.ok());
  EXPECT_TRUE(cfg.value().get_bool_or("t1", false));
  EXPECT_TRUE(cfg.value().get_bool_or("t2", false));
  EXPECT_TRUE(cfg.value().get_bool_or("t3", false));
  EXPECT_FALSE(cfg.value().get_bool_or("f1", true));
  EXPECT_FALSE(cfg.value().get_bool_or("f2", true));
  EXPECT_TRUE(cfg.value().get_bool_or("junk", true)) << "unparseable keeps fallback";
  EXPECT_TRUE(cfg.value().get_bool_or("missing", true));
}

TEST(ConfigTest, FromArgsAndMerge) {
  const char* argv[] = {"policy=mct", "servers=4"};
  auto cfg = Config::from_args(2, argv);
  ASSERT_TRUE(cfg.ok());
  EXPECT_EQ(cfg.value().get_or("policy", ""), "mct");

  auto base = Config::parse("policy=random\nport=9000\n").value();
  base.merge(cfg.value());
  EXPECT_EQ(base.get_or("policy", ""), "mct") << "args override file";
  EXPECT_EQ(base.get_int_or("port", 0), 9000);
}

TEST(ConfigTest, FromArgsRejectsBadShape) {
  const char* argv[] = {"notakeyvalue"};
  EXPECT_FALSE(Config::from_args(1, argv).ok());
}

// ---- rng ----

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(2.0, 3.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u) << "all values of a small range should appear";
}

TEST(RngTest, BernoulliRate) {
  Rng rng(11);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.25) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(RngTest, NormalMoments) {
  Rng rng(13);
  double sum = 0, sum2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(17);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.03);
}

// ---- clock ----

TEST(ClockTest, StopwatchMeasuresSleep) {
  const Stopwatch watch;
  sleep_seconds(0.02);
  const double t = watch.elapsed();
  EXPECT_GE(t, 0.018);
  EXPECT_LT(t, 0.5);
}

TEST(ClockTest, BusySpinApproximatesTarget) {
  const double actual = busy_spin_seconds(0.01);
  EXPECT_GE(actual, 0.0099);
  EXPECT_LT(actual, 0.1);
  EXPECT_EQ(busy_spin_seconds(0.0), 0.0);
  EXPECT_EQ(busy_spin_seconds(-1.0), 0.0);
}

TEST(ClockTest, DeadlineExpiry) {
  Deadline d(0.02);
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining(), 0.0);
  sleep_seconds(0.03);
  EXPECT_TRUE(d.expired());
  EXPECT_EQ(d.remaining(), 0.0);
}

TEST(ClockTest, NeverDeadline) {
  const Deadline d = Deadline::never();
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining(), 1e12);
}

// ---- blocking queue ----

TEST(QueueTest, FifoOrder) {
  BlockingQueue<int> q;
  q.push(1);
  q.push(2);
  q.push(3);
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_EQ(q.pop().value(), 3);
}

TEST(QueueTest, TryPopEmpty) {
  BlockingQueue<int> q;
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(QueueTest, BoundedTryPush) {
  BlockingQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3)) << "capacity reached";
  (void)q.pop();
  EXPECT_TRUE(q.try_push(3));
}

TEST(QueueTest, CloseDrainsThenEnds) {
  BlockingQueue<int> q;
  q.push(1);
  q.close();
  EXPECT_FALSE(q.push(2)) << "push after close fails";
  EXPECT_EQ(q.pop().value(), 1) << "drain remaining";
  EXPECT_FALSE(q.pop().has_value()) << "then closed signal";
}

TEST(QueueTest, CloseWakesBlockedPop) {
  BlockingQueue<int> q;
  std::thread t([&q] {
    const auto v = q.pop();
    EXPECT_FALSE(v.has_value());
  });
  sleep_seconds(0.01);
  q.close();
  t.join();
}

TEST(QueueTest, ProducerConsumerStress) {
  BlockingQueue<int> q(16);
  constexpr int kItems = 2000;
  std::int64_t sum = 0;
  std::thread consumer([&q, &sum] {
    while (auto v = q.pop()) sum += *v;
  });
  std::thread producer([&q] {
    for (int i = 1; i <= kItems; ++i) q.push(i);
    q.close();
  });
  producer.join();
  consumer.join();
  EXPECT_EQ(sum, static_cast<std::int64_t>(kItems) * (kItems + 1) / 2);
}

// ---- log ----

namespace nslog = ::ns::log;  // `log` alone collides with std::log from <cmath>

TEST(LogTest, ParseLevels) {
  using nslog::Level;
  EXPECT_EQ(nslog::parse_level("trace"), Level::kTrace);
  EXPECT_EQ(nslog::parse_level("debug"), Level::kDebug);
  EXPECT_EQ(nslog::parse_level("info"), Level::kInfo);
  EXPECT_EQ(nslog::parse_level("warn"), Level::kWarn);
  EXPECT_EQ(nslog::parse_level("error"), Level::kError);
  EXPECT_EQ(nslog::parse_level("off"), Level::kOff);
  EXPECT_EQ(nslog::parse_level("bogus"), Level::kWarn);
}

TEST(LogTest, ThresholdGatesEnabled) {
  const auto saved = nslog::threshold();
  nslog::set_threshold(nslog::Level::kError);
  EXPECT_FALSE(nslog::enabled(nslog::Level::kInfo));
  EXPECT_TRUE(nslog::enabled(nslog::Level::kError));
  nslog::set_threshold(saved);
}

}  // namespace
}  // namespace ns
