// Tests for the extended numerical substrate: FFT, convolution, SVD,
// quadrature and ODE integration.
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/blas.hpp"
#include "linalg/eigen.hpp"
#include "linalg/expm.hpp"
#include "linalg/fft.hpp"
#include "linalg/lu.hpp"
#include "linalg/quad.hpp"
#include "linalg/svd.hpp"

namespace ns::linalg {
namespace {

constexpr double kPi = 3.14159265358979323846;

// ---- FFT ----

TEST(FftTest, PowerOfTwoHelpers) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(1024));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(3));
  EXPECT_EQ(next_power_of_two(1), 1u);
  EXPECT_EQ(next_power_of_two(5), 8u);
  EXPECT_EQ(next_power_of_two(1024), 1024u);
}

TEST(FftTest, DcSignal) {
  Vector re(8, 1.0), im(8, 0.0);
  ASSERT_TRUE(fft_inplace(re, im).ok());
  EXPECT_NEAR(re[0], 8.0, 1e-12);
  for (std::size_t i = 1; i < 8; ++i) {
    EXPECT_NEAR(re[i], 0.0, 1e-12);
    EXPECT_NEAR(im[i], 0.0, 1e-12);
  }
}

TEST(FftTest, SingleToneLandsInOneBin) {
  constexpr std::size_t n = 64;
  Vector re(n), im(n, 0.0);
  constexpr std::size_t k = 5;
  for (std::size_t i = 0; i < n; ++i) {
    re[i] = std::cos(2.0 * kPi * k * static_cast<double>(i) / n);
  }
  ASSERT_TRUE(fft_inplace(re, im).ok());
  // A real cosine splits between bins k and n-k with magnitude n/2 each.
  for (std::size_t i = 0; i < n; ++i) {
    const double mag = std::hypot(re[i], im[i]);
    if (i == k || i == n - k) {
      EXPECT_NEAR(mag, n / 2.0, 1e-9);
    } else {
      EXPECT_NEAR(mag, 0.0, 1e-9);
    }
  }
}

TEST(FftTest, RoundTripRestoresSignal) {
  Rng rng(1);
  constexpr std::size_t n = 256;
  const Vector re0 = random_vector(n, rng);
  const Vector im0 = random_vector(n, rng);
  auto fwd = fft(re0, im0);
  ASSERT_TRUE(fwd.ok());
  auto back = ifft(fwd.value().first, fwd.value().second);
  ASSERT_TRUE(back.ok());
  EXPECT_LT(max_abs_diff(back.value().first, re0), 1e-10);
  EXPECT_LT(max_abs_diff(back.value().second, im0), 1e-10);
}

TEST(FftTest, ParsevalEnergyConserved) {
  Rng rng(2);
  constexpr std::size_t n = 128;
  Vector re = random_vector(n, rng), im(n, 0.0);
  double time_energy = 0;
  for (const double v : re) time_energy += v * v;
  ASSERT_TRUE(fft_inplace(re, im).ok());
  double freq_energy = 0;
  for (std::size_t i = 0; i < n; ++i) freq_energy += re[i] * re[i] + im[i] * im[i];
  EXPECT_NEAR(freq_energy / n, time_energy, 1e-8 * time_energy);
}

TEST(FftTest, LengthOneIsIdentity) {
  Vector re{3.5}, im{-1.0};
  ASSERT_TRUE(fft_inplace(re, im).ok());
  EXPECT_DOUBLE_EQ(re[0], 3.5);
  EXPECT_DOUBLE_EQ(im[0], -1.0);
}

TEST(FftTest, Validation) {
  Vector re(6), im(6);
  EXPECT_FALSE(fft_inplace(re, im).ok()) << "non power of two";
  Vector re2(8), im2(4);
  EXPECT_FALSE(fft_inplace(re2, im2).ok()) << "length mismatch";
}

TEST(ConvolveTest, KnownSmallCase) {
  // [1, 2] * [3, 4] = [3, 10, 8]
  auto z = convolve(Vector{1, 2}, Vector{3, 4});
  ASSERT_TRUE(z.ok());
  ASSERT_EQ(z.value().size(), 3u);
  EXPECT_NEAR(z.value()[0], 3.0, 1e-10);
  EXPECT_NEAR(z.value()[1], 10.0, 1e-10);
  EXPECT_NEAR(z.value()[2], 8.0, 1e-10);
}

TEST(ConvolveTest, MatchesDirectConvolution) {
  Rng rng(3);
  const Vector x = random_vector(37, rng);
  const Vector y = random_vector(23, rng);
  auto z = convolve(x, y);
  ASSERT_TRUE(z.ok());
  ASSERT_EQ(z.value().size(), x.size() + y.size() - 1);
  for (std::size_t k = 0; k < z.value().size(); ++k) {
    double direct = 0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      if (k >= i && k - i < y.size()) direct += x[i] * y[k - i];
    }
    EXPECT_NEAR(z.value()[k], direct, 1e-9);
  }
}

TEST(ConvolveTest, DeltaIsIdentity) {
  Rng rng(4);
  const Vector x = random_vector(20, rng);
  auto z = convolve(x, Vector{1.0});
  ASSERT_TRUE(z.ok());
  EXPECT_LT(max_abs_diff(z.value(), x), 1e-10);
}

TEST(ConvolveTest, EmptyRejected) {
  EXPECT_FALSE(convolve({}, Vector{1.0}).ok());
}

// ---- SVD ----

TEST(SvdTest, DiagonalMatrix) {
  Matrix a(3, 3);
  a(0, 0) = 3;
  a(1, 1) = -5;  // singular value is |−5| = 5
  a(2, 2) = 1;
  auto sv = singular_values(a);
  ASSERT_TRUE(sv.ok());
  EXPECT_NEAR(sv.value()[0], 5.0, 1e-10);
  EXPECT_NEAR(sv.value()[1], 3.0, 1e-10);
  EXPECT_NEAR(sv.value()[2], 1.0, 1e-10);
}

TEST(SvdTest, ReconstructsMatrix) {
  Rng rng(5);
  const Matrix a = Matrix::random(10, 6, rng);
  auto svd = jacobi_svd(a);
  ASSERT_TRUE(svd.ok());
  // A = U diag(sigma) V^T
  Matrix us = svd.value().u;
  for (std::size_t j = 0; j < 6; ++j) {
    for (std::size_t i = 0; i < 10; ++i) us(i, j) *= svd.value().singular_values[j];
  }
  const Matrix rebuilt = matmul(us, svd.value().v.transposed());
  EXPECT_LT(max_abs_diff(a, rebuilt), 1e-9 * a.max_abs());
}

TEST(SvdTest, OrthonormalFactors) {
  Rng rng(6);
  const Matrix a = Matrix::random(12, 5, rng);
  auto svd = jacobi_svd(a);
  ASSERT_TRUE(svd.ok());
  const Matrix utu = matmul(svd.value().u.transposed(), svd.value().u);
  const Matrix vtv = matmul(svd.value().v.transposed(), svd.value().v);
  EXPECT_LT(max_abs_diff(utu, Matrix::identity(5)), 1e-9);
  EXPECT_LT(max_abs_diff(vtv, Matrix::identity(5)), 1e-9);
}

TEST(SvdTest, MatchesEigenOfGram) {
  // Singular values of A are sqrt of eigenvalues of A^T A.
  Rng rng(7);
  const Matrix a = Matrix::random(9, 9, rng);
  auto sv = singular_values(a);
  ASSERT_TRUE(sv.ok());
  // det(A) = product of singular values (up to sign).
  auto lu = LuFactorization::factor(a);
  ASSERT_TRUE(lu.ok());
  double product = 1.0;
  for (const double s : sv.value()) product *= s;
  EXPECT_NEAR(product, std::abs(lu.value().determinant()), 1e-6 * product);
}

TEST(SvdTest, WideMatrixHandled) {
  Rng rng(8);
  const Matrix a = Matrix::random(4, 9, rng);
  auto sv = singular_values(a);
  ASSERT_TRUE(sv.ok());
  EXPECT_EQ(sv.value().size(), 4u);
  for (std::size_t i = 1; i < sv.value().size(); ++i) {
    EXPECT_GE(sv.value()[i - 1], sv.value()[i]);
  }
}

TEST(SvdTest, ConditionNumber) {
  EXPECT_NEAR(condition_number(Matrix::identity(5)).value(), 1.0, 1e-10);
  Matrix a = Matrix::identity(3);
  a(2, 2) = 0.001;
  EXPECT_NEAR(condition_number(a).value(), 1000.0, 1e-6);
  // Singular matrix rejected.
  Matrix s(2, 2);
  s(0, 0) = 1;
  EXPECT_FALSE(condition_number(s).ok());
}

// ---- quadrature ----

TEST(QuadTest, PolynomialExact) {
  // Simpson is exact for cubics: integral of x^3 on [0, 2] = 4.
  auto v = adaptive_simpson([](double x) { return x * x * x; }, 0.0, 2.0);
  ASSERT_TRUE(v.ok());
  EXPECT_NEAR(v.value(), 4.0, 1e-12);
}

TEST(QuadTest, TranscendentalToTolerance) {
  auto v = adaptive_simpson([](double x) { return std::exp(-x * x); }, -6.0, 6.0, 1e-12);
  ASSERT_TRUE(v.ok());
  EXPECT_NEAR(v.value(), std::sqrt(kPi), 1e-9);
}

TEST(QuadTest, ReversedAndDegenerateIntervals) {
  auto fwd = adaptive_simpson([](double x) { return x; }, 0.0, 1.0);
  auto rev = adaptive_simpson([](double x) { return x; }, 1.0, 0.0);
  ASSERT_TRUE(fwd.ok());
  ASSERT_TRUE(rev.ok());
  EXPECT_NEAR(fwd.value(), -rev.value(), 1e-12);
  EXPECT_DOUBLE_EQ(adaptive_simpson([](double) { return 1.0; }, 2.0, 2.0).value(), 0.0);
}

TEST(QuadTest, NonFiniteIntegrandRejected) {
  auto v = adaptive_simpson([](double x) { return 1.0 / x; }, -1.0, 1.0);
  EXPECT_FALSE(v.ok());
}

TEST(QuadTest, SampledSineIntegral) {
  // Integral of sin on [0, pi] = 2, from 33 samples.
  Vector x, y;
  for (int i = 0; i <= 32; ++i) {
    x.push_back(kPi * i / 32.0);
    y.push_back(std::sin(x.back()));
  }
  auto v = integrate_samples(x, y);
  ASSERT_TRUE(v.ok());
  EXPECT_NEAR(v.value(), 2.0, 1e-5);
}

// ---- ODE ----

TEST(OdeTest, ExponentialDecay) {
  // y' = -y, y(0) = 1 -> y(t) = e^-t.
  auto traj = rk4_integrate([](const Vector& y, Vector& dy) { dy[0] = -y[0]; },
                            Vector{1.0}, 0.01, 100, 100);
  ASSERT_TRUE(traj.ok());
  ASSERT_EQ(traj.value().size(), 2u);  // initial + final
  EXPECT_NEAR(traj.value()[1], std::exp(-1.0), 1e-8);
}

TEST(OdeTest, HarmonicOscillatorEnergyStable) {
  // y'' = -y as a 2-system; RK4 over 10 periods keeps energy to ~1e-6.
  auto traj = rk4_integrate(
      [](const Vector& y, Vector& dy) {
        dy[0] = y[1];
        dy[1] = -y[0];
      },
      Vector{1.0, 0.0}, 0.01, 6283, 6283);
  ASSERT_TRUE(traj.ok());
  const std::size_t last = traj.value().size() - 2;
  const double energy =
      traj.value()[last] * traj.value()[last] + traj.value()[last + 1] * traj.value()[last + 1];
  EXPECT_NEAR(energy, 1.0, 1e-6);
}

TEST(OdeTest, StrideControlsSampling) {
  auto traj = rk4_integrate([](const Vector& y, Vector& dy) { dy[0] = -y[0]; },
                            Vector{1.0}, 0.01, 10, 2);
  ASSERT_TRUE(traj.ok());
  // t=0 plus steps 2,4,6,8,10 -> 6 samples of a 1-dim state.
  EXPECT_EQ(traj.value().size(), 6u);
}

TEST(OdeTest, Validation) {
  auto f = [](const Vector& y, Vector& dy) { dy[0] = y[0]; };
  EXPECT_FALSE(rk4_integrate(f, Vector{1.0}, -0.1, 10).ok());
  EXPECT_FALSE(rk4_integrate(f, Vector{}, 0.1, 10).ok());
}

TEST(OdeTest, DivergenceDetected) {
  // y' = y^2 blows up in finite time from y(0)=1 at t=1.
  auto traj = rk4_integrate([](const Vector& y, Vector& dy) { dy[0] = y[0] * y[0]; },
                            Vector{1.0}, 0.01, 1000);
  EXPECT_FALSE(traj.ok());
}

TEST(LorenzTest, StaysOnAttractor) {
  auto traj = lorenz_trajectory(10.0, 28.0, 8.0 / 3.0, 1.0, 1.0, 1.0, 0.005, 4000, 10);
  ASSERT_TRUE(traj.ok());
  ASSERT_EQ(traj.value().size() % 3, 0u);
  // Classic bounds: the attractor lives inside |x|,|y| < 25, 0 < z < 50.
  // Skip the transient (first quarter).
  const std::size_t samples = traj.value().size() / 3;
  for (std::size_t s = samples / 4; s < samples; ++s) {
    EXPECT_LT(std::abs(traj.value()[3 * s + 0]), 25.0);
    EXPECT_LT(std::abs(traj.value()[3 * s + 1]), 30.0);
    EXPECT_GT(traj.value()[3 * s + 2], 0.0);
    EXPECT_LT(traj.value()[3 * s + 2], 55.0);
  }
}

TEST(LorenzTest, DeterministicForSameInputs) {
  auto a = lorenz_trajectory(10, 28, 8.0 / 3.0, 1, 1, 1, 0.01, 500, 5);
  auto b = lorenz_trajectory(10, 28, 8.0 / 3.0, 1, 1, 1, 0.01, 500, 5);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value(), b.value());
}

// ---- matrix exponential ----

TEST(ExpmTest, ZeroMatrixGivesIdentity) {
  auto e = expm(Matrix(4, 4));
  ASSERT_TRUE(e.ok());
  EXPECT_LT(max_abs_diff(e.value(), Matrix::identity(4)), 1e-14);
}

TEST(ExpmTest, DiagonalMatrix) {
  Matrix a(3, 3);
  a(0, 0) = 1.0;
  a(1, 1) = -2.0;
  a(2, 2) = 0.5;
  auto e = expm(a);
  ASSERT_TRUE(e.ok());
  EXPECT_NEAR(e.value()(0, 0), std::exp(1.0), 1e-12);
  EXPECT_NEAR(e.value()(1, 1), std::exp(-2.0), 1e-12);
  EXPECT_NEAR(e.value()(2, 2), std::exp(0.5), 1e-12);
  EXPECT_NEAR(e.value()(0, 1), 0.0, 1e-13);
}

TEST(ExpmTest, RotationGenerator) {
  // exp(t [0 -1; 1 0]) = [cos t, -sin t; sin t, cos t].
  Matrix a(2, 2);
  a(0, 1) = -1.0;
  a(1, 0) = 1.0;
  const double t = 1.234;
  Matrix ta = a;
  scal(t, ta.storage());
  auto e = expm(ta);
  ASSERT_TRUE(e.ok());
  EXPECT_NEAR(e.value()(0, 0), std::cos(t), 1e-12);
  EXPECT_NEAR(e.value()(0, 1), -std::sin(t), 1e-12);
  EXPECT_NEAR(e.value()(1, 0), std::sin(t), 1e-12);
}

TEST(ExpmTest, LargeNormHandledByScaling) {
  // Norm >> 1 exercises the squaring phase.
  Matrix a(2, 2);
  a(0, 0) = 10.0;
  a(1, 1) = -10.0;
  a(0, 1) = 3.0;
  auto e = expm(a);
  ASSERT_TRUE(e.ok());
  EXPECT_NEAR(e.value()(0, 0), std::exp(10.0), 1e-6 * std::exp(10.0));
  EXPECT_NEAR(e.value()(1, 1), std::exp(-10.0), 1e-8);
}

TEST(ExpmTest, GroupProperty) {
  // exp(A) exp(-A) = I.
  Rng rng(9);
  Matrix a = Matrix::random(6, 6, rng);
  auto ea = expm(a);
  scal(-1.0, a.storage());
  auto ena = expm(a);
  ASSERT_TRUE(ea.ok());
  ASSERT_TRUE(ena.ok());
  const Matrix product = matmul(ea.value(), ena.value());
  EXPECT_LT(max_abs_diff(product, Matrix::identity(6)), 1e-9);
}

TEST(ExpmTest, MatchesEigenForSymmetric) {
  // For symmetric A: exp(A) = V exp(L) V^T.
  Rng rng(10);
  Matrix a = Matrix::random_spd(8, rng);
  scal(0.1, a.storage());  // keep exp() values moderate
  auto e = expm(a);
  ASSERT_TRUE(e.ok());
  auto eig = jacobi_eigen(a);
  ASSERT_TRUE(eig.ok());
  Matrix vexp = eig.value().vectors;
  for (std::size_t j = 0; j < 8; ++j) {
    const double lambda = std::exp(eig.value().values[j]);
    for (std::size_t i = 0; i < 8; ++i) vexp(i, j) *= lambda;
  }
  const Matrix ref = matmul(vexp, eig.value().vectors.transposed());
  EXPECT_LT(max_abs_diff(e.value(), ref), 1e-10);
}

TEST(ExpmTest, ApplyPropagatesLinearOde) {
  // x' = A x with A = diag(-1, -2): x(t) = (e^-t, e^-2t).
  Matrix a(2, 2);
  a(0, 0) = -1.0;
  a(1, 1) = -2.0;
  auto x = expm_apply(a, 0.7, Vector{1.0, 1.0});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR(x.value()[0], std::exp(-0.7), 1e-12);
  EXPECT_NEAR(x.value()[1], std::exp(-1.4), 1e-12);
}

TEST(ExpmTest, Validation) {
  EXPECT_FALSE(expm(Matrix(2, 3)).ok());
  EXPECT_FALSE(expm(Matrix()).ok());
  EXPECT_FALSE(expm_apply(Matrix(3, 3), 1.0, Vector{1.0}).ok());
}

}  // namespace
}  // namespace ns::linalg
