// Stress and soak tests: sustained mixed workloads, many concurrent
// clients, agent hammering, and repeated start/stop cycles. These guard the
// concurrency structure (detached handlers, worker gates, registry locks)
// against races that small tests cannot surface.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/clock.hpp"
#include "linalg/blas.hpp"
#include "linalg/sparse.hpp"
#include "testkit/cluster.hpp"

namespace ns {
namespace {

using dsl::DataObject;

TEST(StressTest, MixedWorkloadAcrossSpecializedPool) {
  testkit::ClusterConfig config;
  testkit::ClusterServerSpec dense;
  dense.name = "dense";
  dense.problems = {"dgesv", "dgemm", "dgemv", "ddot"};
  testkit::ClusterServerSpec sparse;
  sparse.name = "sparse";
  sparse.problems = {"cg", "sor", "tridiag"};
  testkit::ClusterServerSpec generalist;
  generalist.name = "generalist";
  config.servers = {dense, sparse, generalist};
  config.rating_base = 800.0;
  auto cluster = testkit::TestCluster::start(std::move(config));
  ASSERT_TRUE(cluster.ok());
  auto client = cluster.value()->make_client();

  Rng rng(1);
  const auto a = linalg::Matrix::random_diag_dominant(24, rng);
  const auto b = linalg::random_vector(24, rng);
  const auto sp = linalg::poisson_1d(32);
  const linalg::Vector rhs(32, 1.0);

  std::atomic<int> failures{0};
  constexpr int kRounds = 25;
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&, w] {
      for (int i = 0; i < kRounds; ++i) {
        bool ok = true;
        switch ((w + i) % 4) {
          case 0: ok = client.call("dgesv", a, b).ok(); break;
          case 1: ok = client.call("cg", sp, rhs).ok(); break;
          case 2: ok = client.call("ddot", b, b).ok(); break;
          default: ok = client.call("fft", linalg::Vector(64, 1.0),
                                    linalg::Vector(64, 0.0)).ok();
        }
        if (!ok) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : workers) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(StressTest, ManyIndependentClients) {
  testkit::ClusterConfig config;
  config.servers = testkit::uniform_pool(3);
  config.rating_base = 800.0;
  auto cluster = testkit::TestCluster::start(std::move(config));
  ASSERT_TRUE(cluster.ok());

  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 8; ++c) {
    clients.emplace_back([&cluster, &failures, c] {
      auto client = cluster.value()->make_client();
      Rng rng(static_cast<std::uint64_t>(c) + 1);
      for (int i = 0; i < 10; ++i) {
        const auto v = linalg::random_vector(256, rng);
        if (!client.call("ddot", v, v).ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(StressTest, AgentQueryHammering) {
  testkit::ClusterConfig config;
  config.servers = testkit::uniform_pool(2);
  config.rating_base = 800.0;
  auto cluster = testkit::TestCluster::start(std::move(config));
  ASSERT_TRUE(cluster.ok());

  std::atomic<int> failures{0};
  std::vector<std::thread> hammers;
  for (int h = 0; h < 4; ++h) {
    hammers.emplace_back([&cluster, &failures] {
      auto client = cluster.value()->make_client();
      const std::vector<DataObject> args = {DataObject(linalg::Vector(64, 1.0)),
                                            DataObject(linalg::Vector(64, 2.0))};
      for (int i = 0; i < 50; ++i) {
        if (!client.query("ddot", args).ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : hammers) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(cluster.value()->agent().stats().queries, 200u);
}

TEST(StressTest, RepeatedClusterLifecycle) {
  // Start/stop cycles must not leak sockets or deadlock.
  for (int round = 0; round < 5; ++round) {
    testkit::ClusterConfig config;
    config.servers = testkit::uniform_pool(2);
    config.rating_base = 500.0;
    auto cluster = testkit::TestCluster::start(std::move(config));
    ASSERT_TRUE(cluster.ok()) << "round " << round;
    auto client = cluster.value()->make_client();
    EXPECT_TRUE(client.call("ddot", linalg::Vector{1, 2}, linalg::Vector{3, 4}).ok());
    cluster.value()->stop();
  }
}

TEST(StressTest, FailuresUnderLoadStillAllSucceed) {
  testkit::ClusterConfig config;
  config.servers = testkit::uniform_pool(3, /*workers=*/2);
  for (auto& s : config.servers) {
    s.slowdown_mode = server::SlowdownMode::kSleep;
    s.failure.mode = server::FailureSpec::Mode::kErrorReply;
    s.failure.probability = 0.15;
  }
  config.rating_base = 1000.0;
  config.registry.max_failures = 1 << 30;  // transient failures
  auto cluster = testkit::TestCluster::start(std::move(config));
  ASSERT_TRUE(cluster.ok());
  auto client = cluster.value()->make_client();

  std::vector<client::RequestHandle> handles;
  for (int i = 0; i < 30; ++i) {
    handles.push_back(client.netsl_nb("simwork", {DataObject(std::int64_t{15})}));
  }
  int ok = 0;
  for (auto& h : handles) {
    if (h.wait().ok()) ++ok;
  }
  EXPECT_EQ(ok, 30);
}

TEST(StressTest, LargePayloadsConcurrently) {
  testkit::ClusterConfig config;
  config.servers = testkit::uniform_pool(2);
  config.rating_base = 800.0;
  auto cluster = testkit::TestCluster::start(std::move(config));
  ASSERT_TRUE(cluster.ok());
  auto client = cluster.value()->make_client();

  // 4 concurrent ~4 MB dgemv transfers.
  Rng rng(3);
  const auto a = linalg::Matrix::random(700, 700, rng);
  const auto x = linalg::random_vector(700, rng);
  std::vector<client::RequestHandle> handles;
  for (int i = 0; i < 4; ++i) {
    handles.push_back(client.netsl_nb("dgemv", {DataObject(a), DataObject(x)}));
  }
  linalg::Vector expected(700, 0.0);
  linalg::gemv(1.0, a, x, 0.0, expected);
  for (auto& h : handles) {
    auto out = h.wait();
    ASSERT_TRUE(out.ok());
    EXPECT_LT(linalg::max_abs_diff(out.value()[0].as_vector(), expected), 1e-10);
  }
}

}  // namespace
}  // namespace ns
