#!/usr/bin/env python3
"""Gate benchmark results against a committed baseline and/or absolute floors.

Usage:
    check_bench_regression.py --baseline BENCH_transport.json \
        bench_agent.json bench_scalability.json
    check_bench_regression.py --baseline BENCH_transport.json \
        --write-baseline bench_agent.json bench_scalability.json
    check_bench_regression.py --prefix bench.fault.e4g. \
        --min bench.fault.e4g.ckpt_compression_ratio=3.0 BENCH_fault.json

The bench binaries (`bench_agent --quick --json out.json`, ...) dump every
metric gauge; --prefix selects which ones this invocation gates (default:
the transport-relevant `bench.transport.` family). Two gating modes, usable
together or alone:

  * baseline-relative (--baseline): a throughput gauge (qps/rps/jps) must
    not drop more than --max-throughput-drop (default 15%) below baseline,
    and a latency gauge (name contains `p99`/`_ms`) must not rise more than
    --max-p99-rise (default 25%) above it. Gauges present in the baseline
    but missing from the current run fail too (a silently skipped benchmark
    is not a pass). New gauges absent from the baseline are reported but do
    not fail — commit a refreshed baseline (--write-baseline) to start
    gating them.

  * absolute floors (--min NAME=VALUE, repeatable): the named gauge must be
    present and >= VALUE. Used for acceptance-shaped results that have a
    hard meaning rather than a drifting baseline — e.g. the E4g checkpoint
    replication wire-compression ratio must stay >= 3x raw.
"""

import argparse
import json
import sys


def load_gauges(path, prefix):
    with open(path) as f:
        doc = json.load(f)
    gauges = doc.get("metrics", {}).get("gauges", {})
    return {k: float(v) for k, v in gauges.items() if k.startswith(prefix)}


def is_latency(name):
    return "p99" in name or "_ms" in name


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("results", nargs="+", help="bench --json output files")
    parser.add_argument("--baseline", help="committed baseline JSON")
    parser.add_argument("--prefix", default="bench.transport.",
                        help="gauge-name prefix this invocation gates")
    parser.add_argument("--min", action="append", default=[], metavar="NAME=VALUE",
                        help="absolute floor: gauge NAME must be >= VALUE")
    parser.add_argument("--max-throughput-drop", type=float, default=0.15,
                        help="fail if throughput < (1 - this) * baseline")
    parser.add_argument("--max-p99-rise", type=float, default=0.25,
                        help="fail if p99 > (1 + this) * baseline")
    parser.add_argument("--write-baseline", action="store_true",
                        help="rewrite the baseline from these results instead of gating")
    args = parser.parse_args()
    if not args.baseline and not args.min:
        parser.error("nothing to gate: pass --baseline and/or --min")
    if args.write_baseline and not args.baseline:
        parser.error("--write-baseline needs --baseline")

    current = {}
    for path in args.results:
        current.update(load_gauges(path, args.prefix))
    if not current:
        print(f"error: no {args.prefix}* gauges found in {args.results}", file=sys.stderr)
        return 1

    if args.write_baseline:
        doc = {
            "comment": "Transport benchmark baseline. Regenerate with "
                       "scripts/check_bench_regression.py --write-baseline after "
                       "an intentional perf change; CI gates against these values.",
            "source": "bench_agent --quick --json / bench_scalability --quick --json",
            "metrics": {k: round(v, 3) for k, v in sorted(current.items())},
        }
        with open(args.baseline, "w") as f:
            json.dump(doc, f, indent=2)
            f.write("\n")
        print(f"wrote {len(current)} gauges to {args.baseline}")
        return 0

    failures = []
    gated = 0

    for spec in args.min:
        name, _, floor_s = spec.partition("=")
        floor = float(floor_s)
        gated += 1
        if name not in current:
            failures.append(f"{name}: missing from current run (floor {floor:g})")
            print(f"  [FAIL] {name}: missing (floor {floor:g})")
            continue
        cur = current[name]
        verdict = "FAIL" if cur < floor else "ok"
        if cur < floor:
            failures.append(f"{name}: {cur:g} < floor {floor:g}")
        print(f"  [{verdict:>4}] {name}: {cur:g} vs floor {floor:g}")

    if args.baseline:
        with open(args.baseline) as f:
            baseline = json.load(f)["metrics"]
        gated += len(baseline)

        for name in sorted(baseline):
            base = float(baseline[name])
            if name not in current:
                failures.append(f"{name}: missing from current run (baseline {base:g})")
                continue
            cur = current[name]
            if is_latency(name):
                limit = base * (1.0 + args.max_p99_rise)
                verdict = "FAIL" if cur > limit else "ok"
                if cur > limit:
                    failures.append(
                        f"{name}: p99 {cur:g} > {limit:g} "
                        f"(baseline {base:g} +{args.max_p99_rise:.0%})")
            else:
                limit = base * (1.0 - args.max_throughput_drop)
                verdict = "FAIL" if cur < limit else "ok"
                if cur < limit:
                    failures.append(
                        f"{name}: throughput {cur:g} < {limit:g} "
                        f"(baseline {base:g} -{args.max_throughput_drop:.0%})")
            delta = (cur / base - 1.0) * 100.0 if base else 0.0
            print(f"  [{verdict:>4}] {name}: {cur:g} vs baseline {base:g} ({delta:+.1f}%)")

        for name in sorted(set(current) - set(baseline)):
            print(f"  [ new] {name}: {current[name]:g} (not in baseline, not gated)")

    if failures:
        print(f"\n{len(failures)} bench gate failure(s):", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"\nall {gated} gated gauges within thresholds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
