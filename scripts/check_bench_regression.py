#!/usr/bin/env python3
"""Gate transport benchmark results against the committed baseline.

Usage:
    check_bench_regression.py --baseline BENCH_transport.json \
        bench_agent.json bench_scalability.json
    check_bench_regression.py --baseline BENCH_transport.json \
        --write-baseline bench_agent.json bench_scalability.json

The bench binaries (`bench_agent --quick --json out.json`,
`bench_scalability --quick --json out.json`) dump every metric gauge;
the transport-relevant ones carry a `bench.transport.` prefix. This
script compares those gauges against the committed baseline and fails
(exit 1) when

  * a throughput gauge (qps/rps/jps) drops more than --max-throughput-drop
    (default 15%) below baseline, or
  * a latency gauge (name contains `p99`) rises more than --max-p99-rise
    (default 25%) above baseline.

Gauges present in the baseline but missing from the current run fail too
(a silently skipped benchmark is not a pass). New gauges absent from the
baseline are reported but do not fail — commit a refreshed baseline
(--write-baseline) to start gating them.
"""

import argparse
import json
import sys

PREFIX = "bench.transport."


def load_gauges(path):
    with open(path) as f:
        doc = json.load(f)
    gauges = doc.get("metrics", {}).get("gauges", {})
    return {k: float(v) for k, v in gauges.items() if k.startswith(PREFIX)}


def is_latency(name):
    return "p99" in name or "_ms" in name


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("results", nargs="+", help="bench --json output files")
    parser.add_argument("--baseline", required=True, help="committed baseline JSON")
    parser.add_argument("--max-throughput-drop", type=float, default=0.15,
                        help="fail if throughput < (1 - this) * baseline")
    parser.add_argument("--max-p99-rise", type=float, default=0.25,
                        help="fail if p99 > (1 + this) * baseline")
    parser.add_argument("--write-baseline", action="store_true",
                        help="rewrite the baseline from these results instead of gating")
    args = parser.parse_args()

    current = {}
    for path in args.results:
        current.update(load_gauges(path))
    if not current:
        print(f"error: no {PREFIX}* gauges found in {args.results}", file=sys.stderr)
        return 1

    if args.write_baseline:
        doc = {
            "comment": "Transport benchmark baseline. Regenerate with "
                       "scripts/check_bench_regression.py --write-baseline after "
                       "an intentional perf change; CI gates against these values.",
            "source": "bench_agent --quick --json / bench_scalability --quick --json",
            "metrics": {k: round(v, 3) for k, v in sorted(current.items())},
        }
        with open(args.baseline, "w") as f:
            json.dump(doc, f, indent=2)
            f.write("\n")
        print(f"wrote {len(current)} gauges to {args.baseline}")
        return 0

    with open(args.baseline) as f:
        baseline = json.load(f)["metrics"]

    failures = []
    for name in sorted(baseline):
        base = float(baseline[name])
        if name not in current:
            failures.append(f"{name}: missing from current run (baseline {base:g})")
            continue
        cur = current[name]
        if is_latency(name):
            limit = base * (1.0 + args.max_p99_rise)
            verdict = "FAIL" if cur > limit else "ok"
            if cur > limit:
                failures.append(
                    f"{name}: p99 {cur:g} > {limit:g} "
                    f"(baseline {base:g} +{args.max_p99_rise:.0%})")
        else:
            limit = base * (1.0 - args.max_throughput_drop)
            verdict = "FAIL" if cur < limit else "ok"
            if cur < limit:
                failures.append(
                    f"{name}: throughput {cur:g} < {limit:g} "
                    f"(baseline {base:g} -{args.max_throughput_drop:.0%})")
        delta = (cur / base - 1.0) * 100.0 if base else 0.0
        print(f"  [{verdict:>4}] {name}: {cur:g} vs baseline {base:g} ({delta:+.1f}%)")

    for name in sorted(set(current) - set(baseline)):
        print(f"  [ new] {name}: {current[name]:g} (not in baseline, not gated)")

    if failures:
        print(f"\n{len(failures)} transport perf regression(s):", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"\nall {len(baseline)} gated transport gauges within thresholds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
