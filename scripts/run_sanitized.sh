#!/usr/bin/env bash
# Build and run the test suite under a sanitizer.
#
# Usage: scripts/run_sanitized.sh [address|thread|undefined] [ctest args...]
#   address (default) = ASan + UBSan
#   thread            = TSan
#   undefined         = UBSan alone (near-native speed, no ASan interceptors)
#
# Uses a dedicated build directory per sanitizer so sanitized and plain
# builds never collide. Example:
#   scripts/run_sanitized.sh address -R chaos
#
# The script's exit status is ctest's exit status: CI jobs gate on it, so a
# failing sanitized suite must fail the job.
set -euo pipefail

SAN="${1:-address}"
case "$SAN" in
    address|thread|undefined) ;;
    *) echo "usage: $0 [address|thread|undefined] [ctest args...]" >&2; exit 2 ;;
esac
if [ "$#" -gt 0 ]; then shift; fi

ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
BUILD="$ROOT/build-$SAN"

cmake -S "$ROOT" -B "$BUILD" -DNETSOLVE_SANITIZE="$SAN" -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD" -j "$(nproc 2>/dev/null || echo 4)"

export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1:abort_on_error=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1:second_deadlock_stack=1}"

cd "$BUILD"
status=0
ctest --output-on-failure "$@" || status=$?
exit "$status"
