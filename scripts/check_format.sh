#!/usr/bin/env bash
# clang-format dry-run over the tree's C++ sources, driven by the committed
# .clang-format. Exit status:
#   0 = clean (or clang-format unavailable: the check is advisory and CI runs
#       it as a non-blocking job, so a missing tool must not fail anything)
#   1 = files need reformatting (the offending files are listed)
set -euo pipefail

ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)

if ! command -v clang-format >/dev/null 2>&1; then
    echo "check_format: clang-format not found; skipping (advisory check)" >&2
    exit 0
fi

cd "$ROOT"
mapfile -t files < <(find src tests bench examples \
    \( -name '*.cpp' -o -name '*.hpp' -o -name '*.h' -o -name '*.c' \) -type f | sort)

status=0
for f in "${files[@]}"; do
    if ! clang-format --dry-run -Werror "$f" >/dev/null 2>&1; then
        echo "needs formatting: $f"
        status=1
    fi
done

if [ "$status" -eq 0 ]; then
    echo "check_format: ${#files[@]} files clean"
fi
exit "$status"
