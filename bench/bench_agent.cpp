// E10 (micro): agent service throughput.
//
// The agent is the only centralized component; the paper's design argument
// is that it stays off the data path (requests carry metadata only) so one
// agent serves a whole pool. This harness measures sustained operation
// rates against a live agent: scheduling queries (the client hot path),
// workload-report ingestion (the server hot path), and catalogue listings,
// at 1 and 4 concurrent callers.
#include "bench/harness.hpp"
#include "net/transport.hpp"

using namespace ns;

namespace {

constexpr int kOpsPerThread = 300;

double ops_per_second(testkit::TestCluster& cluster, int threads,
                      const std::function<bool(client::NetSolveClient&)>& op) {
  std::atomic<int> failures{0};
  const Stopwatch watch;
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&cluster, &op, &failures] {
      auto client = cluster.make_client();
      for (int i = 0; i < kOpsPerThread; ++i) {
        if (!op(client)) failures.fetch_add(1);
      }
    });
  }
  for (auto& w : workers) w.join();
  const double elapsed = watch.elapsed();
  if (failures.load() > 0) {
    std::fprintf(stderr, "%d operations failed\n", failures.load());
    std::exit(1);
  }
  return threads * kOpsPerThread / elapsed;
}

}  // namespace

int main() {
  bench::banner("E10 / micro", "agent operation throughput (ops/s)");

  testkit::ClusterConfig config;
  config.servers = testkit::uniform_pool(4);
  config.rating_base = 800.0;
  auto cluster = testkit::TestCluster::start(std::move(config));
  if (!cluster.ok()) {
    std::fprintf(stderr, "cluster failed: %s\n", cluster.error().to_string().c_str());
    return 1;
  }

  const std::vector<dsl::DataObject> args = {dsl::DataObject(linalg::Vector(64, 1.0)),
                                             dsl::DataObject(linalg::Vector(64, 2.0))};

  bench::row("%-22s %12s %12s", "operation", "1 caller", "4 callers");
  for (const auto& [name, op] :
       std::vector<std::pair<const char*, std::function<bool(client::NetSolveClient&)>>>{
           {"query (schedule)",
            [&args](client::NetSolveClient& c) { return c.query("ddot", args).ok(); }},
           {"list_problems",
            [](client::NetSolveClient& c) { return c.list_problems().ok(); }},
           {"ping",
            [](client::NetSolveClient& c) { return c.ping_agent().ok(); }},
       }) {
    const double one = ops_per_second(*cluster.value(), 1, op);
    const double four = ops_per_second(*cluster.value(), 4, op);
    bench::row("%-22s %10.0f/s %10.0f/s", name, one, four);
  }

  bench::row("");
  bench::row("shape check: thousands of ops/s per agent — metadata-only queries keep");
  bench::row("  the agent far from being the bottleneck next to 10-1000ms solves");
  return 0;
}
