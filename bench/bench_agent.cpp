// E10 (micro): agent service throughput.
//
// The agent is the only centralized component; the paper's design argument
// is that it stays off the data path (requests carry metadata only) so one
// agent serves a whole pool. This harness measures sustained operation
// rates against a live agent: scheduling queries (the client hot path),
// catalogue listings, and pings, at 1 and 4 concurrent callers.
//
// The measured rates and the 4-caller query latency p99 land in the
// bench.transport.agent.* gauges; the bench-gate CI lane compares them
// against the committed BENCH_transport.json baseline
// (scripts/check_bench_regression.py), so a transport regression fails CI
// instead of silently eroding QPS.
#include "bench/harness.hpp"
#include "net/transport.hpp"

using namespace ns;

namespace {

struct OpResult {
  double ops_per_second = 0.0;
  double p99_ms = 0.0;
};

OpResult measure(testkit::TestCluster& cluster, int threads, int ops_per_thread,
                 const std::function<bool(client::NetSolveClient&)>& op) {
  std::atomic<int> failures{0};
  std::mutex mu;
  std::vector<double> latencies;
  latencies.reserve(static_cast<std::size_t>(threads * ops_per_thread));
  const Stopwatch watch;
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      auto client = cluster.make_client();
      std::vector<double> local;
      local.reserve(static_cast<std::size_t>(ops_per_thread));
      for (int i = 0; i < ops_per_thread; ++i) {
        const Stopwatch one;
        if (!op(client)) failures.fetch_add(1);
        local.push_back(one.elapsed());
      }
      std::lock_guard<std::mutex> lock(mu);
      latencies.insert(latencies.end(), local.begin(), local.end());
    });
  }
  for (auto& w : workers) w.join();
  const double elapsed = watch.elapsed();
  if (failures.load() > 0) {
    std::fprintf(stderr, "%d operations failed\n", failures.load());
    std::exit(1);
  }
  OpResult r;
  r.ops_per_second = threads * ops_per_thread / elapsed;
  std::sort(latencies.begin(), latencies.end());
  if (!latencies.empty()) {
    const auto rank = static_cast<std::size_t>(0.99 * static_cast<double>(latencies.size()));
    r.p99_ms = latencies[std::min(rank, latencies.size() - 1)] * 1e3;
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::Options::parse(argc, argv);
  const int ops_per_thread = opts.quick ? 150 : 300;

  bench::banner("E10 / micro", "agent operation throughput (ops/s)");

  testkit::ClusterConfig config;
  config.servers = testkit::uniform_pool(4);
  config.rating_base = 800.0;
  auto cluster = testkit::TestCluster::start(std::move(config));
  if (!cluster.ok()) {
    std::fprintf(stderr, "cluster failed: %s\n", cluster.error().to_string().c_str());
    return 1;
  }

  const std::vector<dsl::DataObject> args = {dsl::DataObject(linalg::Vector(64, 1.0)),
                                             dsl::DataObject(linalg::Vector(64, 2.0))};

  bench::row("%-22s %12s %12s %12s", "operation", "1 caller", "4 callers", "p99 (4c)");
  for (const auto& [name, key, op] :
       std::vector<std::tuple<const char*, const char*,
                              std::function<bool(client::NetSolveClient&)>>>{
           {"query (schedule)", "query",
            [&args](client::NetSolveClient& c) { return c.query("ddot", args).ok(); }},
           {"list_problems", "list",
            [](client::NetSolveClient& c) { return c.list_problems().ok(); }},
           {"ping", "ping",
            [](client::NetSolveClient& c) { return c.ping_agent().ok(); }},
       }) {
    const OpResult one = measure(*cluster.value(), 1, ops_per_thread, op);
    const OpResult four = measure(*cluster.value(), 4, ops_per_thread, op);
    bench::row("%-22s %10.0f/s %10.0f/s %9.2fms", name, one.ops_per_second,
               four.ops_per_second, four.p99_ms);
    const std::string base = std::string("bench.transport.agent.") + key;
    metrics::gauge(base + ".qps_c1").set(one.ops_per_second);
    metrics::gauge(base + ".qps_c4").set(four.ops_per_second);
    metrics::gauge(base + ".p99_ms_c4").set(four.p99_ms);
  }

  bench::row("");
  bench::row("shape check: thousands of ops/s per agent — metadata-only queries keep");
  bench::row("  the agent far from being the bottleneck next to 10-1000ms solves");

  if (!opts.json_path.empty() &&
      !bench::write_metrics_json(opts.json_path, "bench_agent", opts.quick)) {
    std::fprintf(stderr, "failed to write %s\n", opts.json_path.c_str());
    return 1;
  }
  return 0;
}
