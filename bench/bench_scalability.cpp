// E7 (Figure D): throughput scaling with pool size and client concurrency,
// plus the small-problem RPS ceiling the transport imposes.
//
// Part 1 — a fixed batch of simulated-compute jobs (sleeping servers =
// independent remote machines, workers=1 each) is farmed at varying client
// concurrency onto pools of 1, 2, 4 and 8 uniform servers. Reported:
// makespan and throughput (jobs/s). Expected shape: with enough concurrent
// clients, throughput scales ~linearly with the number of servers until the
// client's outstanding-request count becomes the bottleneck; with one
// client thread (serial calls) adding servers buys nothing.
//
// Part 2 — small-problem RPS: tiny real solves (ddot on 64-vectors, ~µs of
// compute) where per-call transport overhead dominates end-to-end time.
// This is the GridRPC iterative-workload regime: many small calls in a
// sequence. The sustained RPS and its p99 land in the
// bench.transport.scalability.* gauges and are gated by the bench-gate CI
// lane against BENCH_transport.json (scripts/check_bench_regression.py).
#include "bench/harness.hpp"

using namespace ns;
using dsl::DataObject;

namespace {

constexpr int kJobs = 48;
constexpr std::int64_t kMflopPerJob = 50;  // 50 ms per job at speed 1

double run_case(std::size_t servers, int concurrency) {
  testkit::ClusterConfig config;
  config.servers = testkit::uniform_pool(servers, /*workers=*/1);
  for (auto& s : config.servers) {
    s.slowdown_mode = server::SlowdownMode::kSleep;
    s.report_period_s = 0.02;
  }
  config.rating_base = 1000.0;
  auto cluster = testkit::TestCluster::start(std::move(config));
  if (!cluster.ok()) {
    std::fprintf(stderr, "cluster failed: %s\n", cluster.error().to_string().c_str());
    std::exit(1);
  }
  auto client = cluster.value()->make_client();

  auto farm = bench::run_farm(kJobs, concurrency, [&](int) {
    return client.netsl("simwork", {DataObject(kMflopPerJob)}).ok();
  });
  if (farm.failures > 0) {
    std::fprintf(stderr, "%d jobs failed\n", farm.failures);
    std::exit(1);
  }
  return farm.makespan;
}

struct SmallResult {
  double rps = 0.0;
  double p99_ms = 0.0;
};

/// Small-problem regime: end-to-end netsl calls whose compute is trivial, so
/// the measured rate is the transport's (query + solve round trips per call).
SmallResult run_small_problems(int jobs, int concurrency) {
  testkit::ClusterConfig config;
  config.servers = testkit::uniform_pool(4);
  config.rating_base = 1000.0;
  auto cluster = testkit::TestCluster::start(std::move(config));
  if (!cluster.ok()) {
    std::fprintf(stderr, "cluster failed: %s\n", cluster.error().to_string().c_str());
    std::exit(1);
  }
  auto client = cluster.value()->make_client();
  const std::vector<DataObject> args = {DataObject(linalg::Vector(64, 1.0)),
                                        DataObject(linalg::Vector(64, 2.0))};

  auto farm = bench::run_farm(jobs, concurrency,
                              [&](int) { return client.netsl("ddot", args).ok(); });
  if (farm.failures > 0) {
    std::fprintf(stderr, "%d small jobs failed\n", farm.failures);
    std::exit(1);
  }
  SmallResult r;
  r.rps = jobs / farm.makespan;
  std::sort(farm.job_seconds.begin(), farm.job_seconds.end());
  if (!farm.job_seconds.empty()) {
    const auto rank =
        static_cast<std::size_t>(0.99 * static_cast<double>(farm.job_seconds.size()));
    r.p99_ms = farm.job_seconds[std::min(rank, farm.job_seconds.size() - 1)] * 1e3;
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::Options::parse(argc, argv);

  bench::banner("E7 / Figure D", "throughput vs pool size and client concurrency");
  bench::row("(%d jobs x %lld ms simulated compute; single-worker sleeping servers)",
             kJobs, static_cast<long long>(kMflopPerJob));
  bench::row("");
  bench::row("%8s %12s %12s %14s %10s", "servers", "clients", "makespan", "throughput",
             "speedup");

  const std::vector<std::pair<std::size_t, int>> cases =
      opts.quick ? std::vector<std::pair<std::size_t, int>>{{1, 8}, {4, 8}, {4, 1}}
                 : std::vector<std::pair<std::size_t, int>>{
                       {1, 8}, {2, 8}, {4, 8}, {8, 8}, {1, 1}, {4, 1}, {4, 2}, {4, 4}, {4, 16},
                   };
  double base_1s8c = 0;
  for (const auto& [servers, clients] : cases) {
    const double makespan = run_case(servers, clients);
    const double throughput = kJobs / makespan;
    if (servers == 1 && clients == 8) base_1s8c = makespan;
    const double speedup = base_1s8c > 0 ? base_1s8c / makespan : 0.0;
    bench::row("%8zu %12d %11.2fs %11.1f/s %9.2fx", servers, clients, makespan, throughput,
               servers == 1 && clients == 8 ? 1.0 : speedup);
    metrics::gauge("bench.transport.scalability.simwork_jps_s" + std::to_string(servers) +
                   "_c" + std::to_string(clients))
        .set(throughput);
  }

  bench::row("");
  bench::row("shape check: rows 1s/2s/4s/8s @8 clients scale ~linearly to ~8 in-flight;");
  bench::row("  the 4-server column shows concurrency gating (1/2/4/16 clients)");

  // ---- Part 2: small-problem RPS (transport-bound) ----
  const int small_jobs = opts.quick ? 400 : 1200;
  bench::row("");
  bench::row("small problems: %d ddot(64) solves, 4 servers, 8 concurrent clients", small_jobs);
  const SmallResult small = run_small_problems(small_jobs, 8);
  bench::row("%8s %12s %12s", "", "RPS", "p99");
  bench::row("%8s %11.0f/s %9.2fms", "", small.rps, small.p99_ms);
  metrics::gauge("bench.transport.scalability.small_rps_c8").set(small.rps);
  metrics::gauge("bench.transport.scalability.small_p99_ms_c8").set(small.p99_ms);

  if (!opts.json_path.empty() &&
      !bench::write_metrics_json(opts.json_path, "bench_scalability", opts.quick)) {
    std::fprintf(stderr, "failed to write %s\n", opts.json_path.c_str());
    return 1;
  }
  return 0;
}
