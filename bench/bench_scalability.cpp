// E7 (Figure D): throughput scaling with pool size and client concurrency.
//
// A fixed batch of simulated-compute jobs (sleeping servers = independent
// remote machines, workers=1 each) is farmed at varying client concurrency
// onto pools of 1, 2, 4 and 8 uniform servers. Reported: makespan and
// throughput (jobs/s). Expected shape: with enough concurrent clients,
// throughput scales ~linearly with the number of servers until the client's
// outstanding-request count becomes the bottleneck; with one client thread
// (serial calls) adding servers buys nothing.
#include "bench/harness.hpp"

using namespace ns;
using dsl::DataObject;

namespace {

constexpr int kJobs = 48;
constexpr std::int64_t kMflopPerJob = 50;  // 50 ms per job at speed 1

double run_case(std::size_t servers, int concurrency) {
  testkit::ClusterConfig config;
  config.servers = testkit::uniform_pool(servers, /*workers=*/1);
  for (auto& s : config.servers) {
    s.slowdown_mode = server::SlowdownMode::kSleep;
    s.report_period_s = 0.02;
  }
  config.rating_base = 1000.0;
  auto cluster = testkit::TestCluster::start(std::move(config));
  if (!cluster.ok()) {
    std::fprintf(stderr, "cluster failed: %s\n", cluster.error().to_string().c_str());
    std::exit(1);
  }
  auto client = cluster.value()->make_client();

  auto farm = bench::run_farm(kJobs, concurrency, [&](int) {
    return client.netsl("simwork", {DataObject(kMflopPerJob)}).ok();
  });
  if (farm.failures > 0) {
    std::fprintf(stderr, "%d jobs failed\n", farm.failures);
    std::exit(1);
  }
  return farm.makespan;
}

}  // namespace

int main() {
  bench::banner("E7 / Figure D", "throughput vs pool size and client concurrency");
  bench::row("(%d jobs x %lld ms simulated compute; single-worker sleeping servers)",
             kJobs, static_cast<long long>(kMflopPerJob));
  bench::row("");
  bench::row("%8s %12s %12s %14s %10s", "servers", "clients", "makespan", "throughput",
             "speedup");

  const std::pair<std::size_t, int> cases[] = {
      {1, 8}, {2, 8}, {4, 8}, {8, 8}, {1, 1}, {4, 1}, {4, 2}, {4, 4}, {4, 16},
  };
  double base_1s8c = 0;
  for (const auto& [servers, clients] : cases) {
    const double makespan = run_case(servers, clients);
    const double throughput = kJobs / makespan;
    if (servers == 1 && clients == 8) base_1s8c = makespan;
    const double speedup = base_1s8c > 0 ? base_1s8c / makespan : 0.0;
    bench::row("%8zu %12d %11.2fs %11.1f/s %9.2fx", servers, clients, makespan, throughput,
               servers == 1 && clients == 8 ? 1.0 : speedup);
  }
  bench::row("");
  bench::row("shape check: rows 1s/2s/4s/8s @8 clients scale ~linearly to ~8 in-flight;");
  bench::row("  the 4-server column shows concurrency gating (1/2/4/16 clients)");
  return 0;
}
