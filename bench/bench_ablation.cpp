// E9 (ablation table): design choices of the agent's scheduler.
//
// Part 1 — pending-assignment counting. A burst of concurrent requests
// arrives between workload reports. With ServerRecord::pending counted, the
// burst spreads across the pool; ablated, every request goes to whichever
// server looked idle in the last (stale) report.
//
// Part 2 — network-awareness of MCT. Two equal-speed servers, one behind an
// emulated WAN link. MCT (which prices latency + bytes/bandwidth) routes
// bulk transfers to the near server once metrics are learned; least_loaded,
// blind to the network term, keeps alternating.
#include <map>

#include "bench/harness.hpp"
#include "linalg/matrix.hpp"

using namespace ns;
using dsl::DataObject;

namespace {

struct BurstResult {
  double makespan = 0;
  int max_share = 0;
  std::string spread;
};

BurstResult run_burst(bool count_pending) {
  testkit::ClusterConfig config;
  config.servers = testkit::uniform_pool(4, /*workers=*/1);
  for (auto& s : config.servers) {
    s.slowdown_mode = server::SlowdownMode::kSleep;
    s.report_period_s = 30.0;  // reports out of the picture: pending or bust
  }
  config.rating_base = 1000.0;
  config.count_pending = count_pending;
  auto cluster = testkit::TestCluster::start(std::move(config));
  if (!cluster.ok()) std::exit(1);
  auto client = cluster.value()->make_client();

  const Stopwatch watch;
  std::vector<client::RequestHandle> handles;
  for (int i = 0; i < 16; ++i) {
    handles.push_back(client.netsl_nb("simwork", {DataObject(std::int64_t{60})}));
  }
  std::map<std::string, int> dist;
  for (auto& h : handles) {
    if (h.wait().ok()) dist[h.stats().server_name] += 1;
  }
  BurstResult result;
  result.makespan = watch.elapsed();
  for (std::size_t i = 0; i < 4; ++i) {
    const auto it = dist.find("server" + std::to_string(i));
    const int n = it == dist.end() ? 0 : it->second;
    result.max_share = std::max(result.max_share, n);
    result.spread += std::to_string(n);
    if (i < 3) result.spread += "/";
  }
  return result;
}

struct SkewResult {
  double mean_call = 0;
  int near_share = 0;
};

SkewResult run_network_skew(const std::string& policy) {
  testkit::ClusterConfig config;
  config.policy = policy;
  testkit::ClusterServerSpec near_box;
  near_box.name = "near";
  near_box.speed = 0.94;  // slightly slower CPU...
  testkit::ClusterServerSpec far_box;
  far_box.name = "far";   // ...than the one behind the WAN link
  far_box.link = net::LinkShape{0.02, 1.5e6};  // WAN-ish replies
  config.servers = {near_box, far_box};
  config.rating_base = 800.0;
  auto cluster = testkit::TestCluster::start(std::move(config));
  if (!cluster.ok()) std::exit(1);
  auto client = cluster.value()->make_client();

  Rng rng(5);
  const auto a = linalg::Matrix::random(400, 400, rng);  // ~1.3 MB payload
  const auto x = linalg::random_vector(400, rng);

  // Learning phase: let the client's metric reports teach the agent.
  for (int i = 0; i < 6; ++i) {
    sleep_seconds(0.05);
    (void)client.call("dgemv", a, x);
  }

  SkewResult result;
  std::vector<double> times;
  for (int i = 0; i < 10; ++i) {
    sleep_seconds(0.05);
    client::CallStats stats;
    auto out = client.netsl("dgemv", {DataObject(a), DataObject(x)}, &stats);
    if (!out.ok()) std::exit(1);
    times.push_back(stats.total_seconds);
    if (stats.server_name == "near") ++result.near_share;
  }
  result.mean_call = bench::summarize(times).mean;
  return result;
}

}  // namespace

int main() {
  bench::banner("E9 / ablations", "scheduler design choices");

  bench::row("-- part 1: pending-assignment counting (16-request burst, stale reports) --");
  bench::row("%-18s %10s %12s %18s", "variant", "makespan", "max_share", "spread");
  const auto with_pending = run_burst(true);
  const auto without_pending = run_burst(false);
  bench::row("%-18s %9.2fs %12d %18s", "pending counted", with_pending.makespan,
             with_pending.max_share, with_pending.spread.c_str());
  bench::row("%-18s %9.2fs %12d %18s", "ablated", without_pending.makespan,
             without_pending.max_share, without_pending.spread.c_str());
  bench::row("shape check: ablation dog-piles (max_share 16) and multiplies makespan ~4x");

  bench::row("");
  bench::row("-- part 2: network-aware MCT vs load-only policy (bulk dgemv; the WAN");
  bench::row("   server has a 6%% faster CPU, baiting network-blind policies) --");
  bench::row("%-14s %12s %16s", "policy", "mean_call", "near_share(/10)");
  for (const char* policy : {"mct", "least_loaded", "round_robin"}) {
    const auto r = run_network_skew(policy);
    bench::row("%-14s %10.0fms %16d", policy, r.mean_call * 1e3, r.near_share);
  }
  bench::row("shape check: mct converges onto the near server; network-blind policies");
  bench::row("  keep paying the WAN reply link on ~half the calls");
  return 0;
}
