// E2 (Table I): remote-vs-local cost and the problem-size crossover.
//
// For dgesv and dgemm at sizes N = 64 .. 512, compare:
//   local      -- calling ns::linalg directly in-process
//   netsolve   -- the full client->agent->server path on loopback
//   netsolve@lan / @wan -- same, over emulated links
//
// Reported: times plus the remote overhead percentage and its breakdown
// (compute vs transfer). Expected shape: overhead is enormous for small N
// and decays toward zero as O(N^3) compute swamps O(N^2) transfer — the
// original system's core argument ("use NetSolve for large problems").
#include "bench/harness.hpp"
#include "linalg/blas.hpp"
#include "linalg/lu.hpp"

using namespace ns;
using dsl::DataObject;

namespace {

double time_local_dgesv(const linalg::Matrix& a, const linalg::Vector& b) {
  const Stopwatch watch;
  auto x = linalg::dgesv(a, b);
  if (!x.ok()) std::abort();
  return watch.elapsed();
}

double time_local_dgemm(const linalg::Matrix& a, const linalg::Matrix& b) {
  const Stopwatch watch;
  const auto c = linalg::matmul(a, b);
  (void)c;
  return watch.elapsed();
}

}  // namespace

int main() {
  bench::banner("E2 / Table I", "remote vs local: overhead and crossover");

  testkit::ClusterConfig config;
  config.servers = testkit::uniform_pool(1);
  auto cluster = testkit::TestCluster::start(std::move(config));
  if (!cluster.ok()) {
    std::fprintf(stderr, "cluster failed: %s\n", cluster.error().to_string().c_str());
    return 1;
  }
  auto loop_client = cluster.value()->make_client();
  auto lan_client = cluster.value()->make_client(net::LinkShape::lan());

  const std::size_t sizes[] = {64, 128, 256, 384, 512, 704};

  bench::row("-- dgesv: solve A x = b --");
  bench::row("%6s %12s %12s %12s %10s %10s", "N", "local", "netsolve", "netsolve@lan",
             "ovh_loop", "ovh_lan");
  for (const std::size_t n : sizes) {
    Rng rng(n);
    const auto a = linalg::Matrix::random_diag_dominant(n, rng);
    const auto b = linalg::random_vector(n, rng);

    const double local = time_local_dgesv(a, b);
    client::CallStats loop_stats, lan_stats;
    auto r1 = loop_client.netsl("dgesv", {DataObject(a), DataObject(b)}, &loop_stats);
    auto r2 = lan_client.netsl("dgesv", {DataObject(a), DataObject(b)}, &lan_stats);
    if (!r1.ok() || !r2.ok()) {
      std::fprintf(stderr, "remote dgesv failed\n");
      return 1;
    }
    bench::row("%6zu %12s %12s %12s %9.0f%% %9.0f%%", n,
               strings::format_seconds(local).c_str(),
               strings::format_seconds(loop_stats.total_seconds).c_str(),
               strings::format_seconds(lan_stats.total_seconds).c_str(),
               100.0 * (loop_stats.total_seconds - local) / local,
               100.0 * (lan_stats.total_seconds - local) / local);
  }

  bench::row("");
  bench::row("-- dgemm: C = A B --");
  bench::row("%6s %12s %12s %12s %10s %10s", "N", "local", "netsolve", "netsolve@lan",
             "ovh_loop", "ovh_lan");
  for (const std::size_t n : sizes) {
    Rng rng(n + 7);
    const auto a = linalg::Matrix::random(n, n, rng);
    const auto b = linalg::Matrix::random(n, n, rng);

    const double local = time_local_dgemm(a, b);
    client::CallStats loop_stats, lan_stats;
    auto r1 = loop_client.netsl("dgemm", {DataObject(a), DataObject(b)}, &loop_stats);
    auto r2 = lan_client.netsl("dgemm", {DataObject(a), DataObject(b)}, &lan_stats);
    if (!r1.ok() || !r2.ok()) {
      std::fprintf(stderr, "remote dgemm failed\n");
      return 1;
    }
    bench::row("%6zu %12s %12s %12s %9.0f%% %9.0f%%", n,
               strings::format_seconds(local).c_str(),
               strings::format_seconds(loop_stats.total_seconds).c_str(),
               strings::format_seconds(lan_stats.total_seconds).c_str(),
               100.0 * (loop_stats.total_seconds - local) / local,
               100.0 * (lan_stats.total_seconds - local) / local);
  }

  bench::row("");
  bench::row("-- overhead breakdown for dgesv over LAN --");
  bench::row("%6s %12s %12s %12s %8s", "N", "total", "compute", "transfer", "xfer%");
  for (const std::size_t n : sizes) {
    Rng rng(n + 13);
    const auto a = linalg::Matrix::random_diag_dominant(n, rng);
    const auto b = linalg::random_vector(n, rng);
    client::CallStats stats;
    auto out = lan_client.netsl("dgesv", {DataObject(a), DataObject(b)}, &stats);
    if (!out.ok()) return 1;
    bench::row("%6zu %12s %12s %12s %7.0f%%", n,
               strings::format_seconds(stats.total_seconds).c_str(),
               strings::format_seconds(stats.exec_seconds).c_str(),
               strings::format_seconds(stats.transfer_seconds).c_str(),
               100.0 * stats.transfer_seconds / stats.total_seconds);
  }
  bench::row("shape check: overhead%% decays with N (O(N^2) transfer vs O(N^3) compute)");
  return 0;
}
