// E8 (micro): substrate kernel rates via google-benchmark.
//
// Confirms the numerical substrate behaves like its LAPACK/BLAS/ITPACK
// archetypes: dgemm/LU/Cholesky scale as O(N^3) with sane constant factors,
// gemv as O(N^2), CG per-iteration as O(nnz), and serialization moves
// GB/s-class data. These rates feed the discussion of the predictor's
// complexity models in EXPERIMENTS.md.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "dsl/value.hpp"
#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/eigen.hpp"
#include "linalg/iterative.hpp"
#include "linalg/lu.hpp"
#include "linalg/qr.hpp"
#include "linalg/sparse.hpp"

namespace {

using namespace ns;
using namespace ns::linalg;

void BM_Gemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  const Matrix a = Matrix::random(n, n, rng);
  const Matrix b = Matrix::random(n, n, rng);
  Matrix c(n, n);
  for (auto _ : state) {
    gemm(1.0, a, b, 0.0, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["Mflops"] = benchmark::Counter(
      2.0 * static_cast<double>(n) * n * n / 1e6 * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_Gemv(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  const Matrix a = Matrix::random(n, n, rng);
  const Vector x = random_vector(n, rng);
  Vector y(n);
  for (auto _ : state) {
    gemv(1.0, a, x, 0.0, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.counters["Mflops"] = benchmark::Counter(
      2.0 * static_cast<double>(n) * n / 1e6 * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Gemv)->Arg(256)->Arg(1024)->Arg(4096);

void BM_LuSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  const Matrix a = Matrix::random_diag_dominant(n, rng);
  const Vector b = random_vector(n, rng);
  for (auto _ : state) {
    auto x = dgesv(a, b);
    benchmark::DoNotOptimize(x);
  }
  state.counters["Mflops"] = benchmark::Counter(
      lu_flops(n) / 1e6 * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_LuSolve)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void BM_CholeskySolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  const Matrix a = Matrix::random_spd(n, rng);
  const Vector b = random_vector(n, rng);
  for (auto _ : state) {
    auto x = dposv(a, b);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_CholeskySolve)->Arg(64)->Arg(128)->Arg(256);

void BM_QrLeastSquares(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(5);
  const Matrix a = Matrix::random(2 * n, n, rng);
  const Vector b = random_vector(2 * n, rng);
  for (auto _ : state) {
    auto x = dgels(a, b);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_QrLeastSquares)->Arg(32)->Arg(64)->Arg(128);

void BM_JacobiEigen(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(6);
  const Matrix a = Matrix::random_spd(n, rng);
  for (auto _ : state) {
    auto eig = jacobi_eigen(a);
    benchmark::DoNotOptimize(eig);
  }
}
BENCHMARK(BM_JacobiEigen)->Arg(16)->Arg(32)->Arg(64);

void BM_SparseMatvec(benchmark::State& state) {
  const auto grid = static_cast<std::size_t>(state.range(0));
  const CsrMatrix a = poisson_2d(grid, grid);
  Vector x(grid * grid, 1.0);
  Vector y;
  for (auto _ : state) {
    a.multiply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.counters["Mflops"] = benchmark::Counter(
      2.0 * static_cast<double>(a.nnz()) / 1e6 * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SparseMatvec)->Arg(32)->Arg(64)->Arg(128);

void BM_ConjugateGradient(benchmark::State& state) {
  const auto grid = static_cast<std::size_t>(state.range(0));
  const CsrMatrix a = poisson_2d(grid, grid);
  const Vector b(grid * grid, 1.0);
  IterativeOptions opts;
  opts.tolerance = 1e-8;
  for (auto _ : state) {
    auto res = conjugate_gradient(a, b, opts);
    benchmark::DoNotOptimize(res);
  }
}
BENCHMARK(BM_ConjugateGradient)->Arg(16)->Arg(32)->Arg(64);

void BM_MarshalMatrix(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  const dsl::DataObject obj(Matrix::random(n, n, rng));
  for (auto _ : state) {
    serial::Encoder enc;
    obj.encode(enc);
    benchmark::DoNotOptimize(enc.bytes().data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(obj.byte_size()));
}
BENCHMARK(BM_MarshalMatrix)->Arg(64)->Arg(256)->Arg(512);

void BM_UnmarshalMatrix(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(8);
  const dsl::DataObject obj(Matrix::random(n, n, rng));
  serial::Encoder enc;
  obj.encode(enc);
  const auto bytes = enc.take();
  for (auto _ : state) {
    serial::Decoder dec(bytes);
    auto back = dsl::DataObject::decode(dec);
    benchmark::DoNotOptimize(back);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes.size()));
}
BENCHMARK(BM_UnmarshalMatrix)->Arg(64)->Arg(256)->Arg(512);

}  // namespace

BENCHMARK_MAIN();
