// E5 (Table III): accuracy of the agent's completion-time predictor.
//
// The scheduler is only as good as its estimate T = network + complexity /
// effective-rate. For the real dense kernels (dgesv, dgemm, dgemv) and CG
// across sizes, compare the agent's prediction for the chosen server with
// the measured call time. Warmup calls let the agent's bandwidth/latency
// EWMAs converge first (the client reports transfer metrics back).
//
// Reported: predicted vs measured time and their ratio. Expected shape:
// ratios within a small constant factor (the LINPACK rating is measured on
// the LU kernel, so dgesv sits closest to 1; kernels with different
// cache behaviour drift but stay the same order of magnitude), and
// monotonically increasing times with N tracked by the predictions.
#include "bench/harness.hpp"
#include "linalg/matrix.hpp"
#include "linalg/sparse.hpp"

using namespace ns;
using dsl::DataObject;

namespace {

void measure(client::NetSolveClient& client, const char* problem,
             const std::vector<DataObject>& args, std::size_t n) {
  // Median-ish of 3: the predictor models steady state, not cold caches.
  double best = 1e300;
  client::CallStats stats{};
  for (int r = 0; r < 3; ++r) {
    // Pace the calls so the agent's pending-assignment count drains between
    // them (we want the idle-server prediction, not the queued one).
    sleep_seconds(0.12);
    client::CallStats s;
    auto out = client.netsl(problem, args, &s);
    if (!out.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", problem, out.error().to_string().c_str());
      std::exit(1);
    }
    if (s.total_seconds < best) {
      best = s.total_seconds;
      stats = s;
    }
  }
  const double ratio = stats.predicted_seconds / stats.total_seconds;
  bench::row("%-8s %6zu %14s %14s %10.2f", problem, n,
             strings::format_seconds(stats.predicted_seconds).c_str(),
             strings::format_seconds(stats.total_seconds).c_str(), ratio);
}

}  // namespace

int main() {
  bench::banner("E5 / Table III", "predicted vs measured request time");

  testkit::ClusterConfig config;
  config.servers = testkit::uniform_pool(1);
  auto cluster = testkit::TestCluster::start(std::move(config));
  if (!cluster.ok()) {
    std::fprintf(stderr, "cluster failed: %s\n", cluster.error().to_string().c_str());
    return 1;
  }
  auto client = cluster.value()->make_client();
  bench::row("server rating: %.0f Mflop/s (LINPACK-style, LU kernel)",
             cluster.value()->rating_base());

  // Warmup: converge the agent's network estimates.
  Rng rng(1);
  for (int i = 0; i < 5; ++i) {
    const auto warm = linalg::Matrix::random_diag_dominant(128, rng);
    (void)client.netsl("dgesv", {DataObject(warm), DataObject(linalg::random_vector(128, rng))});
  }

  bench::row("%-8s %6s %14s %14s %10s", "problem", "N", "predicted", "measured", "ratio");
  for (const std::size_t n : {128, 256, 384, 512}) {
    const auto a = linalg::Matrix::random_diag_dominant(n, rng);
    const auto b = linalg::random_vector(n, rng);
    measure(client, "dgesv", {DataObject(a), DataObject(b)}, n);
  }
  for (const std::size_t n : {128, 256, 384}) {
    const auto a = linalg::Matrix::random(n, n, rng);
    const auto b = linalg::Matrix::random(n, n, rng);
    measure(client, "dgemm", {DataObject(a), DataObject(b)}, n);
  }
  for (const std::size_t n : {512, 1024, 2048}) {
    const auto a = linalg::Matrix::random(n, n, rng);
    const auto x = linalg::random_vector(n, rng);
    measure(client, "dgemv", {DataObject(a), DataObject(x)}, n);
  }
  for (const std::size_t grid : {16, 24, 32}) {
    const auto a = linalg::poisson_2d(grid, grid);
    measure(client, "cg", {DataObject(a), DataObject(linalg::Vector(grid * grid, 1.0))},
            grid * grid);
  }

  bench::row("");
  bench::row("shape check: dense-kernel ratios within a small constant of 1;");
  bench::row("  CG's generic a*N^2 planning model is the loosest (iteration count");
  bench::row("  is data-dependent) -- same order of magnitude expected");
  return 0;
}
