// E1 (Figure A): effective bandwidth of argument transfer vs data size.
//
// A transfer-dominated problem (ddot over two N-double vectors) is called
// through the full NetSolve path — marshal, agent query, shaped send,
// execute, reply — for sizes 2^10 .. 2^20 doubles over three emulated links
// (loopback/unshaped, LAN ~100 Mb/s + 0.5 ms, WAN ~10 Mb/s + 20 ms).
//
// Reported: effective bandwidth = payload bytes / total call time. Expected
// shape: rises with size toward each link's configured ceiling; small calls
// are latency/overhead bound (the original paper's argument for using
// NetSolve on large problems).
#include "bench/harness.hpp"
#include "linalg/matrix.hpp"

using namespace ns;
using dsl::DataObject;

namespace {

struct LinkCase {
  const char* name;
  net::LinkShape shape;
};

}  // namespace

int main() {
  bench::banner("E1 / Figure A", "effective bandwidth vs argument size");

  testkit::ClusterConfig config;
  config.servers = testkit::uniform_pool(1);
  config.rating_base = 1000.0;
  auto cluster = testkit::TestCluster::start(std::move(config));
  if (!cluster.ok()) {
    std::fprintf(stderr, "cluster failed: %s\n", cluster.error().to_string().c_str());
    return 1;
  }

  const LinkCase links[] = {
      {"loopback", net::LinkShape::unshaped()},
      {"lan_100mbit", net::LinkShape::lan()},
      {"wan_10mbit", net::LinkShape::wan()},
  };

  bench::row("%-12s %10s %12s %14s %16s", "link", "doubles", "payload", "call_time",
             "eff_bandwidth");
  for (const auto& link : links) {
    auto client = cluster.value()->make_client(link.shape);
    for (std::size_t log2n = 10; log2n <= 20; log2n += 2) {
      const std::size_t n = std::size_t{1} << log2n;
      linalg::Vector x(n, 1.0), y(n, 2.0);
      const std::vector<DataObject> args = {DataObject(x), DataObject(y)};
      const std::uint64_t bytes = dsl::args_byte_size(args);

      // Few repetitions for big WAN transfers, more for small calls.
      const int reps = n <= (1u << 14) ? 5 : 2;
      std::vector<double> times;
      for (int r = 0; r < reps; ++r) {
        client::CallStats stats;
        auto out = client.netsl("ddot", args, &stats);
        if (!out.ok()) {
          std::fprintf(stderr, "ddot failed: %s\n", out.error().to_string().c_str());
          return 1;
        }
        times.push_back(stats.total_seconds);
      }
      const auto s = bench::summarize(times);
      bench::row("%-12s %10zu %12s %14s %13.2f MB/s", link.name, n,
                 strings::format_bytes(static_cast<double>(bytes)).c_str(),
                 strings::format_seconds(s.mean).c_str(),
                 static_cast<double>(bytes) / s.mean / 1e6);
    }
  }
  bench::row("shape check: bandwidth should approach the link ceiling for large sizes");
  bench::row("  (loopback: host-limited, lan: ~12.5 MB/s, wan: ~1.25 MB/s)");
  return 0;
}
