// E3 (Figure B): load balancing on a heterogeneous pool.
//
// 64 simulated-compute jobs (mixed sizes) are farmed, 8 concurrently, onto
// four single-worker servers with emulated speeds 1, 1/2, 1/4, 1/8 (the
// servers sleep, correctly modelling independent remote machines on a
// one-host deployment — see DESIGN.md). The same workload runs under each
// selection policy:
//
//   mct          -- NetSolve's minimum-completion-time predictor
//   least_loaded -- workload-only baseline
//   round_robin  -- state-blind rotation
//   random       -- uniform random
//
// Reported: makespan, mean job time, and the per-server job distribution.
// Expected shape: MCT wins by roughly the pool's heterogeneity factor over
// round-robin/random (which hand 1/4 of the work to the 8x-slower server),
// with a job spread proportional to server speed.
#include <map>

#include "bench/harness.hpp"

using namespace ns;
using dsl::DataObject;

namespace {

constexpr int kJobs = 64;
constexpr int kConcurrency = 8;
constexpr double kRating = 1000.0;  // Mflop/s nominal

// Mixed job sizes: 30/60/90 Mflop => 30/60/90 ms on the speed-1 server.
std::int64_t job_mflop(int job) { return 30 * (1 + job % 3); }

struct PolicyResult {
  double makespan = 0;
  double mean_job = 0;
  int failures = 0;
  std::map<std::string, int> per_server;
};

PolicyResult run_policy(const std::string& policy) {
  testkit::ClusterConfig config;
  config.policy = policy;
  config.servers = testkit::power_of_two_pool(4, /*workers=*/1);
  for (auto& s : config.servers) {
    s.slowdown_mode = server::SlowdownMode::kSleep;
    s.report_period_s = 0.02;
  }
  config.rating_base = kRating;
  auto cluster = testkit::TestCluster::start(std::move(config));
  if (!cluster.ok()) {
    std::fprintf(stderr, "cluster failed: %s\n", cluster.error().to_string().c_str());
    std::exit(1);
  }
  auto client = cluster.value()->make_client();

  PolicyResult result;
  std::mutex mu;
  auto farm = bench::run_farm(kJobs, kConcurrency, [&](int job) {
    client::CallStats stats;
    auto out = client.netsl("simwork", {DataObject(job_mflop(job))}, &stats);
    if (out.ok()) {
      std::lock_guard<std::mutex> lock(mu);
      result.per_server[stats.server_name] += 1;
    }
    return out.ok();
  });
  result.makespan = farm.makespan;
  result.mean_job = bench::summarize(farm.job_seconds).mean;
  result.failures = farm.failures;
  return result;
}

}  // namespace

int main() {
  bench::banner("E3 / Figure B",
                "policy comparison on a 1:2:4:8 heterogeneous pool (64 jobs, 8-way)");

  const char* policies[] = {"mct", "least_loaded", "round_robin", "random"};
  std::map<std::string, PolicyResult> results;
  for (const auto* policy : policies) results[policy] = run_policy(policy);

  bench::row("%-14s %10s %12s %9s   %s", "policy", "makespan", "mean_job", "failures",
             "jobs per server (fast..slow)");
  for (const auto* policy : policies) {
    const auto& r = results[policy];
    std::string spread;
    for (int i = 0; i < 4; ++i) {
      const std::string name = "server" + std::to_string(i) + "_s" + std::to_string(i);
      const auto it = r.per_server.find(name);
      spread += std::to_string(it == r.per_server.end() ? 0 : it->second);
      if (i < 3) spread += "/";
    }
    bench::row("%-14s %9.2fs %11.3fs %9d   %s", policy, r.makespan, r.mean_job, r.failures,
               spread.c_str());
  }

  const double speedup_rr = results["round_robin"].makespan / results["mct"].makespan;
  const double speedup_rnd = results["random"].makespan / results["mct"].makespan;
  bench::row("");
  bench::row("mct speedup vs round_robin: %.2fx, vs random: %.2fx", speedup_rr, speedup_rnd);
  bench::row("shape check: mct ~proportional spread (expect ~34/17/9/4); rr/random pay");
  bench::row("  ~1/4 of the jobs on the 8x slower server -> ~2-4x worse makespan");
  return 0;
}
