// E4 (Table II): fault tolerance under injected server failures.
//
// Part 1 (error-reply mode): 40 jobs run against a 4-server pool in which
// every server fails each request independently with probability p (the
// request is received, then refused — the costly failure the retry logic
// must absorb). Two client configurations:
//
//   no-retry -- max_retries = 1: the request fails if its first server does
//   retry    -- max_retries = 8: walk the ranked list / re-query (NetSolve)
//
// The agent is configured for transient failures (no blacklisting) so p
// stays constant through the run. Reported: success rate, mean job time,
// and mean attempts. Expected shape: no-retry success ~= (1 - p); retry
// keeps 100% success at a time cost growing like 1/(1-p).
//
// Part 2 (chaos modes): the same farm driven through the deterministic
// network fault injector (net/fault.hpp) with deadline-budgeted clients and
// the agent's circuit breaker enabled. Modes: mid-stream connection reset,
// read/write stall, payload corruption (CRC-caught), a hard crash-kill +
// restart of one server mid-run, and the mixed schedule used by the chaos
// acceptance test. Reported per mode: success rate, mean attempts, and p95
// job latency. The run is recorded as a machine-readable baseline in
// BENCH_fault.json (written to the current working directory).
#include <chrono>
#include <cstdio>
#include <thread>

#include "bench/harness.hpp"

using namespace ns;
using dsl::DataObject;

namespace {

constexpr int kJobs = 40;
constexpr int kConcurrency = 4;

struct CaseResult {
  double success_rate = 0;
  double mean_time = 0;
  double mean_attempts = 0;
};

CaseResult run_case(double failure_prob, bool retry) {
  testkit::ClusterConfig config;
  config.servers = testkit::uniform_pool(4, /*workers=*/1);
  for (auto& s : config.servers) {
    s.slowdown_mode = server::SlowdownMode::kSleep;
    s.failure.mode = server::FailureSpec::Mode::kErrorReply;
    s.failure.probability = failure_prob;
  }
  config.rating_base = 1000.0;
  // Transient failures: never blacklist, so p is stationary for the run.
  config.registry.max_failures = 1 << 30;
  auto cluster = testkit::TestCluster::start(std::move(config));
  if (!cluster.ok()) {
    std::fprintf(stderr, "cluster failed: %s\n", cluster.error().to_string().c_str());
    std::exit(1);
  }

  client::ClientConfig cc;
  cc.agent = cluster.value()->agent_endpoint();
  cc.max_retries = retry ? 8 : 1;
  client::NetSolveClient client(cc);

  std::mutex mu;
  std::int64_t attempts_total = 0;
  int observed = 0;
  auto farm = bench::run_farm(kJobs, kConcurrency, [&](int) {
    client::CallStats stats;
    auto out = client.netsl("simwork", {DataObject(std::int64_t{40})}, &stats);
    if (out.ok()) {
      std::lock_guard<std::mutex> lock(mu);
      attempts_total += stats.attempts;
      ++observed;
    }
    return out.ok();
  });

  CaseResult result;
  result.success_rate =
      static_cast<double>(kJobs - farm.failures) / static_cast<double>(kJobs);
  result.mean_time = bench::summarize(farm.job_seconds).mean;
  result.mean_attempts =
      observed > 0 ? static_cast<double>(attempts_total) / observed : 0.0;
  return result;
}

// ---- Part 2: injector-driven chaos modes ----

constexpr double kDeadlineS = 20.0;

struct ChaosCase {
  const char* name;
  net::FaultPlan plan;  // empty rules = no injector fault (crash-kill case)
  bool crash_kill = false;
  // simwork units per job; the crash-kill case uses longer jobs so the farm
  // is still in flight when the server dies and again when it rejoins.
  std::int64_t work = 5;
};

struct ChaosResult {
  double success_rate = 0;
  double mean_attempts = 0;
  double mean_time = 0;
  double p95_time = 0;
  double makespan = 0;
};

ChaosResult run_chaos_case(const ChaosCase& c) {
  testkit::ClusterConfig config;
  config.servers = testkit::uniform_pool(4, /*workers=*/1);
  for (auto& s : config.servers) s.slowdown_mode = server::SlowdownMode::kSleep;
  config.rating_base = 1000.0;
  // Circuit breaker on: faulty servers are quarantined, probed half-open by
  // the agent's ping loop, and re-admitted at reduced rating.
  config.registry.max_failures = 2;
  config.registry.quarantine_s = 0.2;
  config.registry.quarantine_max_s = 1.0;
  config.registry.probes_to_close = 2;
  config.ping_period_s = 0.05;
  config.io_timeout_s = 1.0;  // bounds the cost of an injected stall
  config.client_deadline_s = kDeadlineS;
  auto cluster = testkit::TestCluster::start(std::move(config));
  if (!cluster.ok()) {
    std::fprintf(stderr, "cluster failed: %s\n", cluster.error().to_string().c_str());
    std::exit(1);
  }

  for (std::size_t i = 0; i < cluster.value()->server_count(); ++i) {
    if (c.plan.rules.empty()) break;
    net::FaultPlan plan = c.plan;
    plan.seed += i;  // decorrelate the per-link fault streams
    cluster.value()->arm_fault(i, plan);
  }

  std::thread killer;
  if (c.crash_kill) {
    killer = std::thread([&cluster] {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      cluster.value()->kill_server(0);
      std::this_thread::sleep_for(std::chrono::milliseconds(600));
      if (auto st = cluster.value()->restart_server(0); !st.ok()) {
        std::fprintf(stderr, "restart failed: %s\n", st.error().to_string().c_str());
      }
    });
  }

  auto client = cluster.value()->make_client();
  std::mutex mu;
  std::int64_t attempts_total = 0;
  int observed = 0;
  auto farm = bench::run_farm(kJobs, kConcurrency, [&](int) {
    client::CallStats stats;
    auto out = client.netsl("simwork", {DataObject(c.work)}, &stats);
    std::lock_guard<std::mutex> lock(mu);
    attempts_total += stats.attempts;
    if (out.ok()) ++observed;
    return out.ok();
  });

  if (killer.joinable()) killer.join();
  cluster.value()->disarm_faults();

  const auto summary = bench::summarize(farm.job_seconds);
  ChaosResult result;
  result.success_rate =
      static_cast<double>(kJobs - farm.failures) / static_cast<double>(kJobs);
  result.mean_attempts =
      static_cast<double>(attempts_total) / static_cast<double>(kJobs);
  result.mean_time = summary.mean;
  result.p95_time = summary.p95;
  result.makespan = farm.makespan;
  (void)observed;
  return result;
}

std::vector<ChaosCase> chaos_cases() {
  std::vector<ChaosCase> cases;
  cases.push_back({"reset", net::FaultPlan::single(net::FaultMode::kReset, 0.2, 0xbe5e7), false});
  cases.push_back({"stall", net::FaultPlan::single(net::FaultMode::kStall, 0.1, 0x57a11), false});
  cases.push_back(
      {"corrupt", net::FaultPlan::single(net::FaultMode::kCorrupt, 0.2, 0xc0554), false});
  cases.push_back({"crash-kill", net::FaultPlan{}, true, 40});
  net::FaultPlan mixed;
  mixed.seed = 0xc4a05;
  mixed.rules.push_back({net::FaultMode::kReset, 0.2, -1, {}});
  mixed.rules.push_back({net::FaultMode::kStall, 0.05, -1, {}});
  mixed.rules.push_back({net::FaultMode::kCorrupt, 0.2, -1, {}});
  cases.push_back({"mixed", mixed, false});
  return cases;
}

}  // namespace

int main() {
  bench::banner("E4 / Table II", "fault tolerance: retry on/off vs failure probability");

  struct ReplyRow {
    double p;
    CaseResult no_retry, with_retry;
  };
  std::vector<ReplyRow> reply_rows;

  bench::row("%8s | %12s %10s | %12s %10s %12s", "p(fail)", "succ(no-rt)", "t(no-rt)",
             "succ(retry)", "t(retry)", "attempts");
  for (const double p : {0.0, 0.1, 0.3, 0.5}) {
    const auto no_retry = run_case(p, /*retry=*/false);
    const auto with_retry = run_case(p, /*retry=*/true);
    reply_rows.push_back({p, no_retry, with_retry});
    bench::row("%8.2f | %11.0f%% %9.0fms | %11.0f%% %9.0fms %12.2f", p,
               100.0 * no_retry.success_rate, no_retry.mean_time * 1e3,
               100.0 * with_retry.success_rate, with_retry.mean_time * 1e3,
               with_retry.mean_attempts);
  }
  bench::row("");
  bench::row("shape check: no-retry success ~= 1-p; retry holds 100%% success with");
  bench::row("  mean attempts ~= 1/(1-p) and time growing accordingly");
  bench::row("");

  bench::banner("E4b", "chaos modes: injected network faults, budgeted retries, breaker");
  bench::row("%12s | %8s %10s %10s %10s %12s", "mode", "success", "attempts", "mean",
             "p95", "makespan");

  struct ChaosRow {
    const char* name;
    ChaosResult r;
  };
  std::vector<ChaosRow> chaos_rows;
  for (const auto& c : chaos_cases()) {
    const auto r = run_chaos_case(c);
    chaos_rows.push_back({c.name, r});
    bench::row("%12s | %7.0f%% %10.2f %8.0fms %8.0fms %10.0fms", c.name,
               100.0 * r.success_rate, r.mean_attempts, r.mean_time * 1e3, r.p95_time * 1e3,
               r.makespan * 1e3);
  }
  bench::row("");
  bench::row("chaos modes run with a %.0fs per-call deadline budget; the expected", kDeadlineS);
  bench::row("  shape is 100%% success in every mode with attempts > 1 absorbing the faults");

  // Machine-readable baseline for regression diffing (see EXPERIMENTS.md).
  if (FILE* out = std::fopen("BENCH_fault.json", "w")) {
    std::fprintf(out, "{\n  \"experiment\": \"bench_fault\",\n");
    std::fprintf(out, "  \"jobs\": %d,\n  \"concurrency\": %d,\n  \"servers\": 4,\n", kJobs,
                 kConcurrency);
    std::fprintf(out, "  \"deadline_s\": %.1f,\n", kDeadlineS);
    std::fprintf(out, "  \"error_reply\": [\n");
    for (std::size_t i = 0; i < reply_rows.size(); ++i) {
      const auto& row = reply_rows[i];
      std::fprintf(out,
                   "    {\"p\": %.2f, \"no_retry_success\": %.3f, \"retry_success\": %.3f, "
                   "\"retry_mean_attempts\": %.3f, \"retry_mean_s\": %.4f}%s\n",
                   row.p, row.no_retry.success_rate, row.with_retry.success_rate,
                   row.with_retry.mean_attempts, row.with_retry.mean_time,
                   i + 1 < reply_rows.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n  \"chaos\": [\n");
    for (std::size_t i = 0; i < chaos_rows.size(); ++i) {
      const auto& row = chaos_rows[i];
      std::fprintf(out,
                   "    {\"mode\": \"%s\", \"success_rate\": %.3f, \"mean_attempts\": %.3f, "
                   "\"mean_s\": %.4f, \"p95_s\": %.4f, \"makespan_s\": %.4f}%s\n",
                   row.name, row.r.success_rate, row.r.mean_attempts, row.r.mean_time,
                   row.r.p95_time, row.r.makespan, i + 1 < chaos_rows.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    bench::row("");
    bench::row("baseline written to BENCH_fault.json");
  }
  return 0;
}
