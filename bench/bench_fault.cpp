// E4 (Table II): fault tolerance under injected server failures.
//
// 40 jobs run against a 4-server pool in which every server fails each
// request independently with probability p (error-reply mode: the request
// is received, then refused — the costly failure the retry logic must
// absorb). Two client configurations:
//
//   no-retry -- max_retries = 1: the request fails if its first server does
//   retry    -- max_retries = 8: walk the ranked list / re-query (NetSolve)
//
// The agent is configured for transient failures (no blacklisting) so p
// stays constant through the run. Reported: success rate, mean job time,
// and mean attempts. Expected shape: no-retry success ~= (1 - p); retry
// keeps 100% success at a time cost growing like 1/(1-p).
#include "bench/harness.hpp"

using namespace ns;
using dsl::DataObject;

namespace {

constexpr int kJobs = 40;
constexpr int kConcurrency = 4;

struct CaseResult {
  double success_rate = 0;
  double mean_time = 0;
  double mean_attempts = 0;
};

CaseResult run_case(double failure_prob, bool retry) {
  testkit::ClusterConfig config;
  config.servers = testkit::uniform_pool(4, /*workers=*/1);
  for (auto& s : config.servers) {
    s.slowdown_mode = server::SlowdownMode::kSleep;
    s.failure.mode = server::FailureSpec::Mode::kErrorReply;
    s.failure.probability = failure_prob;
  }
  config.rating_base = 1000.0;
  // Transient failures: never blacklist, so p is stationary for the run.
  config.registry.max_failures = 1 << 30;
  auto cluster = testkit::TestCluster::start(std::move(config));
  if (!cluster.ok()) {
    std::fprintf(stderr, "cluster failed: %s\n", cluster.error().to_string().c_str());
    std::exit(1);
  }

  client::ClientConfig cc;
  cc.agent = cluster.value()->agent_endpoint();
  cc.max_retries = retry ? 8 : 1;
  client::NetSolveClient client(cc);

  std::mutex mu;
  std::int64_t attempts_total = 0;
  int observed = 0;
  auto farm = bench::run_farm(kJobs, kConcurrency, [&](int) {
    client::CallStats stats;
    auto out = client.netsl("simwork", {DataObject(std::int64_t{40})}, &stats);
    if (out.ok()) {
      std::lock_guard<std::mutex> lock(mu);
      attempts_total += stats.attempts;
      ++observed;
    }
    return out.ok();
  });

  CaseResult result;
  result.success_rate =
      static_cast<double>(kJobs - farm.failures) / static_cast<double>(kJobs);
  result.mean_time = bench::summarize(farm.job_seconds).mean;
  result.mean_attempts =
      observed > 0 ? static_cast<double>(attempts_total) / observed : 0.0;
  return result;
}

}  // namespace

int main() {
  bench::banner("E4 / Table II", "fault tolerance: retry on/off vs failure probability");

  bench::row("%8s | %12s %10s | %12s %10s %12s", "p(fail)", "succ(no-rt)", "t(no-rt)",
             "succ(retry)", "t(retry)", "attempts");
  for (const double p : {0.0, 0.1, 0.3, 0.5}) {
    const auto no_retry = run_case(p, /*retry=*/false);
    const auto with_retry = run_case(p, /*retry=*/true);
    bench::row("%8.2f | %11.0f%% %9.0fms | %11.0f%% %9.0fms %12.2f", p,
               100.0 * no_retry.success_rate, no_retry.mean_time * 1e3,
               100.0 * with_retry.success_rate, with_retry.mean_time * 1e3,
               with_retry.mean_attempts);
  }
  bench::row("");
  bench::row("shape check: no-retry success ~= 1-p; retry holds 100%% success with");
  bench::row("  mean attempts ~= 1/(1-p) and time growing accordingly");
  return 0;
}
