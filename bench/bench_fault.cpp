// E4 (Table II): fault tolerance under injected server failures.
//
// Part 1 (error-reply mode): 40 jobs run against a 4-server pool in which
// every server fails each request independently with probability p (the
// request is received, then refused — the costly failure the retry logic
// must absorb). Two client configurations:
//
//   no-retry -- max_retries = 1: the request fails if its first server does
//   retry    -- max_retries = 8: walk the ranked list / re-query (NetSolve)
//
// The agent is configured for transient failures (no blacklisting) so p
// stays constant through the run. Reported: success rate, mean job time,
// and mean attempts. Expected shape: no-retry success ~= (1 - p); retry
// keeps 100% success at a time cost growing like 1/(1-p).
//
// Part 2 (chaos modes): the same farm driven through the deterministic
// network fault injector (net/fault.hpp) with deadline-budgeted clients and
// the agent's circuit breaker enabled. Modes: mid-stream connection reset,
// read/write stall, payload corruption (CRC-caught), a hard crash-kill +
// restart of one server mid-run, and the mixed schedule used by the chaos
// acceptance test. Reported per mode: success rate, mean attempts, and p95
// job latency. The run is recorded as a machine-readable baseline in
// BENCH_fault.json (written to the current working directory).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <thread>

#include "bench/harness.hpp"

using namespace ns;
using dsl::DataObject;

namespace {

// --quick shrinks the farm so the run fits a CI smoke budget.
int g_jobs = 40;
constexpr int kConcurrency = 4;

struct CaseResult {
  double success_rate = 0;
  double mean_time = 0;
  double mean_attempts = 0;
};

CaseResult run_case(double failure_prob, bool retry) {
  testkit::ClusterConfig config;
  config.servers = testkit::uniform_pool(4, /*workers=*/1);
  for (auto& s : config.servers) {
    s.slowdown_mode = server::SlowdownMode::kSleep;
    s.failure.mode = server::FailureSpec::Mode::kErrorReply;
    s.failure.probability = failure_prob;
  }
  config.rating_base = 1000.0;
  // Transient failures: never blacklist, so p is stationary for the run.
  config.registry.max_failures = 1 << 30;
  auto cluster = testkit::TestCluster::start(std::move(config));
  if (!cluster.ok()) {
    std::fprintf(stderr, "cluster failed: %s\n", cluster.error().to_string().c_str());
    std::exit(1);
  }

  client::ClientConfig cc;
  cc.agents = {cluster.value()->agent_endpoint()};
  cc.max_retries = retry ? 8 : 1;
  client::NetSolveClient client(cc);

  std::mutex mu;
  std::int64_t attempts_total = 0;
  int observed = 0;
  auto farm = bench::run_farm(g_jobs, kConcurrency, [&](int) {
    client::CallStats stats;
    auto out = client.netsl("simwork", {DataObject(std::int64_t{40})}, &stats);
    if (out.ok()) {
      std::lock_guard<std::mutex> lock(mu);
      attempts_total += stats.attempts;
      ++observed;
    }
    return out.ok();
  });

  CaseResult result;
  result.success_rate =
      static_cast<double>(g_jobs - farm.failures) / static_cast<double>(g_jobs);
  result.mean_time = bench::summarize(farm.job_seconds).mean;
  result.mean_attempts =
      observed > 0 ? static_cast<double>(attempts_total) / observed : 0.0;
  return result;
}

// ---- Part 2: injector-driven chaos modes ----

constexpr double kDeadlineS = 20.0;

struct ChaosCase {
  const char* name;
  net::FaultPlan plan;  // empty rules = no injector fault (crash-kill case)
  bool crash_kill = false;
  // simwork units per job; the crash-kill case uses longer jobs so the farm
  // is still in flight when the server dies and again when it rejoins.
  std::int64_t work = 5;
};

struct ChaosResult {
  double success_rate = 0;
  double mean_attempts = 0;
  double mean_time = 0;
  double p95_time = 0;
  double makespan = 0;
};

ChaosResult run_chaos_case(const ChaosCase& c) {
  testkit::ClusterConfig config;
  config.servers = testkit::uniform_pool(4, /*workers=*/1);
  for (auto& s : config.servers) s.slowdown_mode = server::SlowdownMode::kSleep;
  config.rating_base = 1000.0;
  // Circuit breaker on: faulty servers are quarantined, probed half-open by
  // the agent's ping loop, and re-admitted at reduced rating.
  config.registry.max_failures = 2;
  config.registry.quarantine_s = 0.2;
  config.registry.quarantine_max_s = 1.0;
  config.registry.probes_to_close = 2;
  config.ping_period_s = 0.05;
  config.io_timeout_s = 1.0;  // bounds the cost of an injected stall
  config.client_deadline_s = kDeadlineS;
  auto cluster = testkit::TestCluster::start(std::move(config));
  if (!cluster.ok()) {
    std::fprintf(stderr, "cluster failed: %s\n", cluster.error().to_string().c_str());
    std::exit(1);
  }

  for (std::size_t i = 0; i < cluster.value()->server_count(); ++i) {
    if (c.plan.rules.empty()) break;
    net::FaultPlan plan = c.plan;
    plan.seed += i;  // decorrelate the per-link fault streams
    cluster.value()->arm_fault(i, plan);
  }

  std::thread killer;
  if (c.crash_kill) {
    killer = std::thread([&cluster] {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      cluster.value()->kill_server(0);
      std::this_thread::sleep_for(std::chrono::milliseconds(600));
      if (auto st = cluster.value()->restart_server(0); !st.ok()) {
        std::fprintf(stderr, "restart failed: %s\n", st.error().to_string().c_str());
      }
    });
  }

  auto client = cluster.value()->make_client();
  std::mutex mu;
  std::int64_t attempts_total = 0;
  int observed = 0;
  auto farm = bench::run_farm(g_jobs, kConcurrency, [&](int) {
    client::CallStats stats;
    auto out = client.netsl("simwork", {DataObject(c.work)}, &stats);
    std::lock_guard<std::mutex> lock(mu);
    attempts_total += stats.attempts;
    if (out.ok()) ++observed;
    return out.ok();
  });

  if (killer.joinable()) killer.join();
  cluster.value()->disarm_faults();

  const auto summary = bench::summarize(farm.job_seconds);
  ChaosResult result;
  result.success_rate =
      static_cast<double>(g_jobs - farm.failures) / static_cast<double>(g_jobs);
  result.mean_attempts =
      static_cast<double>(attempts_total) / static_cast<double>(g_jobs);
  result.mean_time = summary.mean;
  result.p95_time = summary.p95;
  result.makespan = farm.makespan;
  (void)observed;
  return result;
}

// ---- Part 3: agent high availability (E4c) ----

struct HaResult {
  double success_rate = 0;
  double mean_time = 0;
  double p95_time = 0;
  double makespan = 0;
  std::uint64_t failovers = 0;
  std::uint64_t degraded_calls = 0;
};

// A 2-agent / 4-server farm whose primary agent is crash-killed mid-run:
// the scheduler tier itself fails while jobs are in flight, and the client's
// agent failover (plus the degraded-mode candidate cache) must keep the
// success rate at 100%.
HaResult run_ha_case() {
  testkit::ClusterConfig config;
  config.servers = testkit::uniform_pool(4, /*workers=*/1);
  for (auto& s : config.servers) s.slowdown_mode = server::SlowdownMode::kSleep;
  config.agent_count = 2;
  config.rating_base = 1000.0;
  config.client_deadline_s = kDeadlineS;
  auto cluster = testkit::TestCluster::start(std::move(config));
  if (!cluster.ok()) {
    std::fprintf(stderr, "cluster failed: %s\n", cluster.error().to_string().c_str());
    std::exit(1);
  }

  const auto failovers_before = metrics::counter("client.agent_failover_total").value();
  const auto degraded_before = metrics::counter("client.degraded_calls_total").value();

  // Kill while the first wave of jobs is still in flight (each job is
  // ~40 ms), so later waves must re-query through the surviving agent.
  std::thread killer([&cluster] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    cluster.value()->kill_agent(0);
  });

  auto client = cluster.value()->make_client();
  auto farm = bench::run_farm(g_jobs, kConcurrency, [&](int) {
    return client.netsl("simwork", {DataObject(std::int64_t{40})}).ok();
  });
  killer.join();

  const auto summary = bench::summarize(farm.job_seconds);
  HaResult result;
  result.success_rate =
      static_cast<double>(g_jobs - farm.failures) / static_cast<double>(g_jobs);
  result.mean_time = summary.mean;
  result.p95_time = summary.p95;
  result.makespan = farm.makespan;
  result.failovers = metrics::counter("client.agent_failover_total").value() - failovers_before;
  result.degraded_calls =
      metrics::counter("client.degraded_calls_total").value() - degraded_before;
  return result;
}

// ---- Part 4: hedged requests vs stragglers (E4d) ----

struct HedgeResult {
  double success_rate = 0;
  double mean_time = 0;
  double p95_time = 0;
  double p99_time = 0;
  double makespan = 0;
  std::uint64_t hedges = 0;
  std::uint64_t hedge_wins = 0;
  std::uint64_t cancels_sent = 0;
  std::uint64_t server_cancelled = 0;
  std::uint64_t server_shed = 0;
};

// Nearest-rank percentile; Summary only carries p95 and tail-latency armor
// is judged at p99.
double percentile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const auto rank = static_cast<std::size_t>(q * static_cast<double>(xs.size() - 1) + 0.5);
  return xs[std::min(rank, xs.size() - 1)];
}

// The straggler experiment: every server's link stalls 10% of frames (the
// classic slow-node/slow-link tail), bounded only by the 1 s io timeout.
// Without hedging a stalled request costs a full timeout before the retry
// walk recovers it; with hedging the backup fires after the observed-p95
// delay and the stall never reaches the caller's latency. Losing attempts
// must be actively reaped — cancelled on their server or shed — never left
// running as ghost work.
HedgeResult run_hedge_case(bool hedged) {
  testkit::ClusterConfig config;
  config.servers = testkit::uniform_pool(4, /*workers=*/1);
  for (auto& s : config.servers) s.slowdown_mode = server::SlowdownMode::kSleep;
  config.rating_base = 1000.0;
  config.registry.max_failures = 1 << 30;  // stalls are stationary, not a breaker test
  config.io_timeout_s = 1.0;
  config.client_deadline_s = kDeadlineS;
  if (hedged) {
    // Static fallback until the per-problem attempt histogram warms up,
    // then its p95 drives the delay (the adaptive path under test).
    config.client_hedge_delay_s = 0.1;
    config.client_hedge_quantile = 0.95;
    config.client_hedge_min_samples = 10;
  }
  auto cluster = testkit::TestCluster::start(std::move(config));
  if (!cluster.ok()) {
    std::fprintf(stderr, "cluster failed: %s\n", cluster.error().to_string().c_str());
    std::exit(1);
  }
  for (std::size_t i = 0; i < cluster.value()->server_count(); ++i) {
    net::FaultPlan plan = net::FaultPlan::single(net::FaultMode::kStall, 0.1, 0x4ed6e);
    plan.seed += i;
    cluster.value()->arm_fault(i, plan);
  }

  const auto hedges_before = metrics::counter("client.hedge_total").value();
  const auto wins_before = metrics::counter("client.hedge_wins_total").value();
  const auto cancels_before = metrics::counter("client.cancel_sent_total").value();
  std::uint64_t cancelled_before = 0, shed_before = 0;
  for (std::size_t i = 0; i < cluster.value()->server_count(); ++i) {
    auto& s = cluster.value()->server(i);
    cancelled_before += s.cancelled_queued() + s.cancelled_running();
    shed_before += s.shed();
  }

  auto client = cluster.value()->make_client();
  auto farm = bench::run_farm(g_jobs, kConcurrency, [&](int) {
    return client.netsl("simwork", {DataObject(std::int64_t{40})}).ok();
  });
  // Let fire-and-forget loser cancellations land before reading counters.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  cluster.value()->disarm_faults();

  const auto summary = bench::summarize(farm.job_seconds);
  HedgeResult result;
  result.success_rate =
      static_cast<double>(g_jobs - farm.failures) / static_cast<double>(g_jobs);
  result.mean_time = summary.mean;
  result.p95_time = summary.p95;
  result.p99_time = percentile(farm.job_seconds, 0.99);
  result.makespan = farm.makespan;
  result.hedges = metrics::counter("client.hedge_total").value() - hedges_before;
  result.hedge_wins = metrics::counter("client.hedge_wins_total").value() - wins_before;
  result.cancels_sent = metrics::counter("client.cancel_sent_total").value() - cancels_before;
  std::uint64_t cancelled_after = 0, shed_after = 0;
  for (std::size_t i = 0; i < cluster.value()->server_count(); ++i) {
    auto& s = cluster.value()->server(i);
    cancelled_after += s.cancelled_queued() + s.cancelled_running();
    shed_after += s.shed();
  }
  result.server_cancelled = cancelled_after - cancelled_before;
  result.server_shed = shed_after - shed_before;
  return result;
}

// ---- Part 5: adaptive overload control on/off at 3x offered load (E4e) ----

struct OverloadResult {
  double capacity = 0;     // closed-loop jobs/s through the full stack
  double goodput = 0;      // in-deadline successes per offered-window second
  int successes = 0;
  int offered = 0;
  double sojourn_p95 = 0;  // server-side queue sojourn p95 at end of run
  std::uint64_t shed_admission = 0;
  std::uint64_t shed_dequeue = 0;
  std::uint64_t shed_codel = 0;
};

constexpr double kOverloadDeadlineS = 0.5;
constexpr double kCodelTargetS = 0.35;

// One full-speed single-worker server driven open-loop at 3x its measured
// capacity with 0.5s per-call deadlines. Controlled: the PR-5 admission
// pipeline (EDF + infeasible/expired sheds + CoDel sojourn shedder).
// Uncontrolled: the pre-overload-control server — FIFO dispatch, every
// admitted job computed no matter how stale, max_queue the only defence.
// The uncontrolled queue fills with jobs whose callers have already given
// up, so almost every completion is ghost work and goodput collapses.
OverloadResult run_overload_case(bool controlled, double window_s) {
  testkit::ClusterConfig config;
  config.servers = testkit::uniform_pool(1, /*workers=*/1);
  config.servers[0].slowdown_mode = server::SlowdownMode::kSleep;
  config.servers[0].max_queue = 64;
  if (controlled) {
    config.servers[0].admission.codel_target_s = kCodelTargetS;
    config.servers[0].admission.codel_interval_s = 0.1;
  } else {
    config.servers[0].admission.edf = false;
    config.servers[0].admission.shed_infeasible = false;
    config.servers[0].admission.shed_expired = false;
  }
  config.rating_base = 1000.0;
  config.io_timeout_s = 10.0;
  auto cluster = testkit::TestCluster::start(std::move(config));
  if (!cluster.ok()) {
    std::fprintf(stderr, "cluster failed: %s\n", cluster.error().to_string().c_str());
    std::exit(1);
  }

  // Closed-loop capacity: sequential 0.1s jobs, including the full client/
  // agent/transfer overhead per call.
  auto warm = cluster.value()->make_client();
  const int warm_jobs = 6;
  const Stopwatch cap_watch;
  for (int i = 0; i < warm_jobs; ++i) {
    auto out = warm.netsl("simwork", {DataObject(std::int64_t{100})});
    if (!out.ok()) {
      std::fprintf(stderr, "warm job failed: %s\n", out.error().to_string().c_str());
      std::exit(1);
    }
  }
  const double capacity = warm_jobs / cap_watch.elapsed();

  client::ClientConfig cc;
  cc.agents = {cluster.value()->agent_endpoint()};
  cc.io_timeout_s = 10.0;
  cc.deadline_s = kOverloadDeadlineS;
  client::NetSolveClient budgeted(cc);

  const double rate = 3.0 * capacity;
  const int n = static_cast<int>(rate * window_s);
  std::vector<client::RequestHandle> handles;
  handles.reserve(static_cast<std::size_t>(n));
  const Stopwatch load_watch;
  for (int i = 0; i < n; ++i) {
    const double wait = i / rate - load_watch.elapsed();
    if (wait > 0.0) sleep_seconds(wait);
    handles.push_back(budgeted.netsl_nb("simwork", {DataObject(std::int64_t{100})}));
  }
  int successes = 0;
  for (auto& h : handles) successes += h.wait().ok() ? 1 : 0;

  OverloadResult r;
  r.capacity = capacity;
  r.offered = n;
  r.successes = successes;
  r.goodput = successes / window_s;
  const auto& server = cluster.value()->server(0);
  r.sojourn_p95 = server.sojourn_p95();
  r.shed_admission = server.shed_admission();
  r.shed_dequeue = server.shed_dequeue();
  r.shed_codel = server.shed_codel();
  return r;
}

// ---- Part 6: durable long jobs vs a mid-run crash (E4f) ----

struct DurableCaseResult {
  double completion_rate = 0;
  double wasted_ratio = 0;  // (Mflop actually computed - Mflop required) / required
  double makespan = 0;
  std::uint64_t recovered = 0;
  std::uint64_t resumed = 0;
};

// A single 4-worker server runs a batch of long simwork jobs and is
// crash-killed (journal frozen, no terminal records — the unclean death)
// once half the total Mflop has been computed, then restarted. With the
// write-ahead journal on, the restarted server replays it, resumes every
// job from its last checkpoint, and the clients reattach via PROBE/WAIT:
// nothing is resubmitted and only the post-checkpoint tail is recomputed.
// With durability off the restarted server has never heard of the jobs, so
// the clients' retry walk resubmits them from scratch and the entire
// pre-crash half of the work is burned again. The wasted-work ratio is
// measured from the server.work_mflop_total counter the compute slices
// maintain: (computed - required) / required.
DurableCaseResult run_durable_case(bool recovery, std::int64_t work_units, int jobs) {
  testkit::ClusterConfig config;
  config.servers = testkit::uniform_pool(1, /*workers=*/kConcurrency);
  config.servers[0].slowdown_mode = server::SlowdownMode::kSleep;
  char data_dir[] = "/tmp/ns_bench_durable_XXXXXX";
  if (recovery) {
    if (mkdtemp(data_dir) == nullptr) {
      std::fprintf(stderr, "mkdtemp failed\n");
      std::exit(1);
    }
    config.servers[0].data_dir = data_dir;
    config.servers[0].checkpoint_interval = 25;
    config.servers[0].journal_fsync = false;  // bench the protocol, not the disk
  }
  config.rating_base = 1000.0;
  // The crash window is the experiment, not a breaker test: keep the dead
  // server listed so the retry walk keeps knocking until the restart lands.
  config.registry.max_failures = 1 << 30;
  auto cluster = testkit::TestCluster::start(std::move(config));
  if (!cluster.ok()) {
    std::fprintf(stderr, "cluster failed: %s\n", cluster.error().to_string().c_str());
    std::exit(1);
  }

  client::ClientConfig cc;
  cc.agents = {cluster.value()->agent_endpoint()};
  cc.max_retries = 12;  // backoff must ride out the 0.3s dark window
  // Reattach is the recovery path: ride out the crash window at the same
  // endpoint and adopt the resumed job's result. Without durability the
  // client falls back to its ordinary retry walk (resubmission).
  cc.reattach_s = recovery ? 30.0 : 0.0;
  client::NetSolveClient client(cc);

  const auto work_before = metrics::counter("server.work_mflop_total").value();
  const double required =
      static_cast<double>(work_units) * static_cast<double>(jobs);

  // Crash once half the required Mflop has been computed, then restart on
  // the same port/data_dir after a short dark window.
  std::thread killer([&] {
    const Deadline guard(30.0);
    while (!guard.expired()) {
      const auto done = metrics::counter("server.work_mflop_total").value() - work_before;
      if (static_cast<double>(done) >= 0.5 * required) break;
      sleep_seconds(0.01);
    }
    cluster.value()->crash_server(0);
    sleep_seconds(0.3);
    if (auto st = cluster.value()->restart_server(0); !st.ok()) {
      std::fprintf(stderr, "restart failed: %s\n", st.error().to_string().c_str());
    }
  });

  auto farm = bench::run_farm(jobs, kConcurrency, [&](int) {
    return client.netsl("simwork", {DataObject(work_units)}).ok();
  });
  killer.join();

  DurableCaseResult result;
  result.completion_rate =
      static_cast<double>(jobs - farm.failures) / static_cast<double>(jobs);
  const auto computed = metrics::counter("server.work_mflop_total").value() - work_before;
  result.wasted_ratio = (static_cast<double>(computed) - required) / required;
  result.makespan = farm.makespan;
  result.recovered = cluster.value()->server(0).jobs_recovered();
  result.resumed = cluster.value()->server(0).jobs_resumed();
  cluster.value()->stop();
  if (recovery) std::filesystem::remove_all(data_dir);
  return result;
}

// ---- Part 7: cross-server checkpoint replication vs journal restart (E4g) ----

struct ReplicationCaseResult {
  double completion_rate = 0;
  double makespan = 0;
  std::uint64_t recovered = 0;         // journal replays on the restarted owner
  std::uint64_t failover_resumes = 0;  // adoptions on the replica
  std::uint64_t frames = 0;            // replicated checkpoint frames
  std::uint64_t raw_bytes = 0;         // snapshot bytes before packing
  std::uint64_t wire_bytes = 0;        // frame bytes actually sent
};

// Two equal-speed servers; server 1 (the owner) takes every job — server 0
// advertises heavy background load so the predictor ranks it last, without
// actually being slower (adopted jobs run at full speed). The owner journals
// in both modes and is crash-killed once half the required Mflop is done.
//
//   replication off: the classic E4f path — the owner restarts on the same
//   data_dir after a dark window and the clients' reattach poll rides it out;
//   recovery cost = dark window + journal replay + post-checkpoint tail.
//
//   replication on: the owner also streams every checkpoint to server 0
//   (CHECKPOINT_PUT, delta/RLE frames) and is NEVER restarted — the crash is
//   permanent. Failover-enabled clients give up the reattach quickly, ask the
//   other ranked candidate to adopt (CHECKPOINT_FETCH), and server 0 resumes
//   each job from its last replicated snapshot; recovery cost = the short
//   reattach probe + the tail, no restart wait at all.
//
// The jobs are simstate (simwork plus a 16 KB solver-state vector that
// drifts a few entries per slice), so replicated snapshots have a realistic
// size and the raw-vs-wire byte counters measure a meaningful compression
// ratio rather than frame-header overhead.
ReplicationCaseResult run_replication_case(bool replication, std::int64_t work_units,
                                           int jobs) {
  constexpr double kDarkWindowS = 2.0;
  testkit::ClusterConfig config;
  config.servers = testkit::uniform_pool(2, /*workers=*/kConcurrency);
  for (auto& s : config.servers) s.slowdown_mode = server::SlowdownMode::kSleep;
  // Steer placement: server 0 predicts (and runs) ~10x slower under synthetic
  // background load, so the agent sends every fresh job to server 1. The load
  // is dropped at crash time — it exists to pin placement, and leaving it on
  // would measure the steering artifact instead of the replica's real speed.
  config.servers[0].background_load = 9.0;
  char data_dir[] = "/tmp/ns_bench_repl_XXXXXX";
  if (mkdtemp(data_dir) == nullptr) {
    std::fprintf(stderr, "mkdtemp failed\n");
    std::exit(1);
  }
  config.servers[1].data_dir = data_dir;
  config.servers[1].checkpoint_interval = 25;
  config.servers[1].journal_fsync = false;  // bench the protocol, not the disk
  if (replication) {
    config.servers[1].replicas = {0};
    config.servers[1].checkpoint_compress = true;
  }
  config.rating_base = 1000.0;
  // Keep the dead owner ranked so the off-mode retry walk keeps knocking
  // until the restart lands (the crash is the experiment, not a breaker test).
  config.registry.max_failures = 1 << 30;
  auto cluster = testkit::TestCluster::start(std::move(config));
  if (!cluster.ok()) {
    std::fprintf(stderr, "cluster failed: %s\n", cluster.error().to_string().c_str());
    std::exit(1);
  }

  client::ClientConfig cc;
  cc.agents = {cluster.value()->agent_endpoint()};
  cc.max_retries = 12;
  // Off: the reattach poll must ride out the dark window to the restart.
  // On: probe the corpse only briefly, then chase the replica.
  cc.reattach_s = replication ? 1.0 : 30.0;
  cc.checkpoint_failover = replication;
  client::NetSolveClient client(cc);

  const auto work_before = metrics::counter("server.work_mflop_total").value();
  const auto frames_before = metrics::counter("store.ckpt_replicated_total").value();
  const auto raw_before = metrics::counter("store.ckpt_raw_bytes_total").value();
  const auto wire_before = metrics::counter("store.ckpt_wire_bytes_total").value();
  const double required =
      static_cast<double>(work_units) * static_cast<double>(jobs);

  std::thread killer([&] {
    const Deadline guard(30.0);
    while (!guard.expired()) {
      const auto done = metrics::counter("server.work_mflop_total").value() - work_before;
      if (static_cast<double>(done) >= 0.5 * required) break;
      sleep_seconds(0.01);
    }
    cluster.value()->server(0).set_background_load(0.0);
    cluster.value()->crash_server(1);
    if (!replication) {
      sleep_seconds(kDarkWindowS);
      if (auto st = cluster.value()->restart_server(1); !st.ok()) {
        std::fprintf(stderr, "restart failed: %s\n", st.error().to_string().c_str());
      }
    }
  });

  auto farm = bench::run_farm(jobs, kConcurrency, [&](int) {
    return client
        .netsl("simstate", {DataObject(work_units), DataObject(std::int64_t{16})})
        .ok();
  });
  killer.join();

  ReplicationCaseResult result;
  result.completion_rate =
      static_cast<double>(jobs - farm.failures) / static_cast<double>(jobs);
  result.makespan = farm.makespan;
  result.recovered = cluster.value()->server(1).jobs_recovered();
  result.failover_resumes = cluster.value()->server(0).failover_resumes();
  result.frames = metrics::counter("store.ckpt_replicated_total").value() - frames_before;
  result.raw_bytes = metrics::counter("store.ckpt_raw_bytes_total").value() - raw_before;
  result.wire_bytes = metrics::counter("store.ckpt_wire_bytes_total").value() - wire_before;
  cluster.value()->stop();
  std::filesystem::remove_all(data_dir);
  return result;
}

// ---- E4h: memory pressure — byte-accounted admission + payload spill ----

struct MemPressureResult {
  double completion_rate = 0;
  double makespan = 0;
  std::uint64_t spilled_bytes = 0;
  std::uint64_t spill_reloads = 0;
  std::uint64_t shed = 0;
  std::uint64_t peak_bytes = 0;
  /// 1 when the accounted high-water mark stayed within the byte budget
  /// (trivially 1 for the ungoverned baseline).
  double peak_within_budget = 1.0;
};

// `jobs` large-payload ddot calls (two 2048-double vectors, ~32 KB of
// payload each) against one slow single-worker server, the combined offered
// payload ~3x the governed byte budget. Governed: admission charges every
// payload, queued-but-cold payloads spill to disk and reload at dispatch,
// and over-budget admissions shed retryably (the client's deadline budget
// absorbs them). Ungoverned: the same burst rides through admission
// unaccounted — the completion baseline the governor must match while
// bounding memory.
MemPressureResult run_mempressure_case(bool governed, int jobs) {
  constexpr std::uint64_t kMemBudget = 256 * 1024;
  char spill_dir[] = "/tmp/ns_bench_mem_XXXXXX";
  if (mkdtemp(spill_dir) == nullptr) {
    std::fprintf(stderr, "mkdtemp failed\n");
    std::exit(1);
  }
  testkit::ClusterConfig config;
  config.servers = testkit::uniform_pool(1, /*workers=*/1);
  auto& s = config.servers[0];
  s.slowdown_mode = server::SlowdownMode::kSleep;
  // ~40 ms of emulated time per job: payloads must sit queued (and cold)
  // long enough for the spill watermark to engage.
  s.speed = 1e-4;
  if (governed) {
    s.mem.global_bytes = kMemBudget;
    s.mem.spill_dir = spill_dir;
    s.mem.spill_min_bytes = 1024;
  }
  config.rating_base = 1000.0;
  config.client_deadline_s = 30.0;
  auto cluster = testkit::TestCluster::start(std::move(config));
  if (!cluster.ok()) {
    std::fprintf(stderr, "cluster failed: %s\n", cluster.error().to_string().c_str());
    std::exit(1);
  }

  const auto spilled_before = metrics::counter("mem.spilled_bytes_total").value();
  const auto reloads_before = metrics::counter("mem.spill_reloads_total").value();
  const auto shed_before = metrics::counter("mem.shed_total").value();

  constexpr std::size_t kVecDoubles = 2048;
  const linalg::Vector x(kVecDoubles, 1.0);
  const linalg::Vector y(kVecDoubles, 2.0);
  const double expected = 2.0 * static_cast<double>(kVecDoubles);
  auto client = cluster.value()->make_client();
  auto farm = bench::run_farm(jobs, kConcurrency, [&](int) {
    auto out = client.netsl("ddot", {DataObject(x), DataObject(y)});
    return out.ok() && out.value().size() == 1 &&
           out.value()[0].as_double() == expected;
  });

  MemPressureResult result;
  result.completion_rate =
      static_cast<double>(jobs - farm.failures) / static_cast<double>(jobs);
  result.makespan = farm.makespan;
  result.spilled_bytes = metrics::counter("mem.spilled_bytes_total").value() - spilled_before;
  result.spill_reloads = metrics::counter("mem.spill_reloads_total").value() - reloads_before;
  result.shed = metrics::counter("mem.shed_total").value() - shed_before;
  const auto& governor = cluster.value()->server(0).governor();
  result.peak_bytes = governor.peak();
  if (governed) {
    result.peak_within_budget = governor.peak() <= kMemBudget ? 1.0 : 0.0;
  }
  cluster.value()->stop();
  std::filesystem::remove_all(spill_dir);
  return result;
}

std::vector<ChaosCase> chaos_cases() {
  std::vector<ChaosCase> cases;
  cases.push_back({"reset", net::FaultPlan::single(net::FaultMode::kReset, 0.2, 0xbe5e7), false});
  cases.push_back({"stall", net::FaultPlan::single(net::FaultMode::kStall, 0.1, 0x57a11), false});
  cases.push_back(
      {"corrupt", net::FaultPlan::single(net::FaultMode::kCorrupt, 0.2, 0xc0554), false});
  cases.push_back({"crash-kill", net::FaultPlan{}, true, 40});
  net::FaultPlan mixed;
  mixed.seed = 0xc4a05;
  mixed.rules.push_back({net::FaultMode::kReset, 0.2, -1, {}});
  mixed.rules.push_back({net::FaultMode::kStall, 0.05, -1, {}});
  mixed.rules.push_back({net::FaultMode::kCorrupt, 0.2, -1, {}});
  cases.push_back({"mixed", mixed, false});
  return cases;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = ns::bench::Options::parse(argc, argv);
  if (opts.quick) g_jobs = 8;

  bench::banner("E4 / Table II", "fault tolerance: retry on/off vs failure probability");

  bench::row("%8s | %12s %10s | %12s %10s %12s", "p(fail)", "succ(no-rt)", "t(no-rt)",
             "succ(retry)", "t(retry)", "attempts");
  const std::vector<double> probs =
      opts.quick ? std::vector<double>{0.0, 0.3} : std::vector<double>{0.0, 0.1, 0.3, 0.5};
  for (const double p : probs) {
    const auto no_retry = run_case(p, /*retry=*/false);
    const auto with_retry = run_case(p, /*retry=*/true);
    bench::row("%8.2f | %11.0f%% %9.0fms | %11.0f%% %9.0fms %12.2f", p,
               100.0 * no_retry.success_rate, no_retry.mean_time * 1e3,
               100.0 * with_retry.success_rate, with_retry.mean_time * 1e3,
               with_retry.mean_attempts);
    // Case results become registry gauges so the JSON baseline is the same
    // registry dump METRICS_QUERY serves from a live process.
    const std::string base = "bench.fault.reply.p" + std::to_string(static_cast<int>(p * 100));
    metrics::gauge(base + ".no_retry_success").set(no_retry.success_rate);
    metrics::gauge(base + ".retry_success").set(with_retry.success_rate);
    metrics::gauge(base + ".retry_mean_attempts").set(with_retry.mean_attempts);
    metrics::gauge(base + ".retry_mean_s").set(with_retry.mean_time);
  }
  bench::row("");
  bench::row("shape check: no-retry success ~= 1-p; retry holds 100%% success with");
  bench::row("  mean attempts ~= 1/(1-p) and time growing accordingly");
  bench::row("");

  bench::banner("E4b", "chaos modes: injected network faults, budgeted retries, breaker");
  bench::row("%12s | %8s %10s %10s %10s %12s", "mode", "success", "attempts", "mean",
             "p95", "makespan");

  for (const auto& c : chaos_cases()) {
    // Quick mode keeps one injector case and the crash-kill case (the two
    // recovery paths worth smoking in CI); the full matrix runs otherwise.
    if (opts.quick && std::string(c.name) != "reset" && !c.crash_kill) continue;
    const auto r = run_chaos_case(c);
    bench::row("%12s | %7.0f%% %10.2f %8.0fms %8.0fms %10.0fms", c.name,
               100.0 * r.success_rate, r.mean_attempts, r.mean_time * 1e3, r.p95_time * 1e3,
               r.makespan * 1e3);
    const std::string base = std::string("bench.fault.chaos.") + c.name;
    metrics::gauge(base + ".success_rate").set(r.success_rate);
    metrics::gauge(base + ".mean_attempts").set(r.mean_attempts);
    metrics::gauge(base + ".mean_s").set(r.mean_time);
    metrics::gauge(base + ".p95_s").set(r.p95_time);
    metrics::gauge(base + ".makespan_s").set(r.makespan);
  }
  bench::row("");
  bench::row("chaos modes run with a %.0fs per-call deadline budget; the expected", kDeadlineS);
  bench::row("  shape is 100%% success in every mode with attempts > 1 absorbing the faults");

  bench::banner("E4c", "agent high availability: primary agent crash-killed mid-run");
  {
    const auto r = run_ha_case();
    bench::row("%12s | %7.0f%% %8.0fms %8.0fms %10.0fms %6llu failovers %4llu degraded",
               "agent-kill", 100.0 * r.success_rate, r.mean_time * 1e3, r.p95_time * 1e3,
               r.makespan * 1e3, static_cast<unsigned long long>(r.failovers),
               static_cast<unsigned long long>(r.degraded_calls));
    metrics::gauge("bench.fault.ha.success_rate").set(r.success_rate);
    metrics::gauge("bench.fault.ha.mean_s").set(r.mean_time);
    metrics::gauge("bench.fault.ha.p95_s").set(r.p95_time);
    metrics::gauge("bench.fault.ha.makespan_s").set(r.makespan);
    metrics::gauge("bench.fault.ha.failovers").set(static_cast<double>(r.failovers));
    metrics::gauge("bench.fault.ha.degraded_calls").set(static_cast<double>(r.degraded_calls));
  }
  bench::row("");
  bench::row("expected shape: 100%% success with at least one agent failover; the agent");
  bench::row("  death costs one connect timeout, not any jobs");

  bench::banner("E4d", "hedged requests vs 10% stall-injected stragglers");
  bench::row("%12s | %8s %8s %8s %8s %10s", "hedging", "success", "mean", "p95", "p99",
             "makespan");
  HedgeResult hedge_results[2];
  for (const bool hedged : {false, true}) {
    const auto r = run_hedge_case(hedged);
    hedge_results[hedged ? 1 : 0] = r;
    bench::row("%12s | %7.0f%% %6.0fms %6.0fms %6.0fms %8.0fms", hedged ? "on" : "off",
               100.0 * r.success_rate, r.mean_time * 1e3, r.p95_time * 1e3,
               r.p99_time * 1e3, r.makespan * 1e3);
    const std::string base = std::string("bench.fault.e4d.") + (hedged ? "on" : "off");
    metrics::gauge(base + ".success_rate").set(r.success_rate);
    metrics::gauge(base + ".mean_s").set(r.mean_time);
    metrics::gauge(base + ".p95_s").set(r.p95_time);
    metrics::gauge(base + ".p99_s").set(r.p99_time);
    metrics::gauge(base + ".makespan_s").set(r.makespan);
  }
  {
    const auto& on = hedge_results[1];
    metrics::gauge("bench.fault.e4d.on.hedges").set(static_cast<double>(on.hedges));
    metrics::gauge("bench.fault.e4d.on.hedge_wins").set(static_cast<double>(on.hedge_wins));
    metrics::gauge("bench.fault.e4d.on.cancels_sent")
        .set(static_cast<double>(on.cancels_sent));
    metrics::gauge("bench.fault.e4d.on.server_cancelled")
        .set(static_cast<double>(on.server_cancelled));
    metrics::gauge("bench.fault.e4d.on.server_shed")
        .set(static_cast<double>(on.server_shed));
    const double cut = on.p99_time > 0 ? hedge_results[0].p99_time / on.p99_time : 0.0;
    metrics::gauge("bench.fault.e4d.p99_cut").set(cut);
    bench::row("");
    bench::row("hedging cut p99 %.1fx; %llu hedges launched, %llu won, losers reaped:",
               cut, static_cast<unsigned long long>(on.hedges),
               static_cast<unsigned long long>(on.hedge_wins));
    bench::row("  %llu cancels sent, servers observed %llu cancelled + %llu shed",
               static_cast<unsigned long long>(on.cancels_sent),
               static_cast<unsigned long long>(on.server_cancelled),
               static_cast<unsigned long long>(on.server_shed));
    bench::row("expected shape: 100%% success both ways; hedging cuts p99 >= 2x by racing");
    bench::row("  a backup after the observed-p95 delay instead of waiting out the stall");
  }

  bench::banner("E4e", "adaptive overload control on/off at 3x offered load");
  bench::row("%12s | %10s %10s %9s %8s | %6s %6s %6s", "control", "capacity", "goodput",
             "success", "sojp95", "adm", "deq", "codel");
  const double overload_window_s = opts.quick ? 1.5 : 3.0;
  OverloadResult overload_results[2];
  for (const bool controlled : {false, true}) {
    const auto r = run_overload_case(controlled, overload_window_s);
    overload_results[controlled ? 1 : 0] = r;
    bench::row("%12s | %8.1f/s %8.1f/s %3d/%-5d %6.0fms | %6llu %6llu %6llu",
               controlled ? "on" : "off", r.capacity, r.goodput, r.successes, r.offered,
               r.sojourn_p95 * 1e3, static_cast<unsigned long long>(r.shed_admission),
               static_cast<unsigned long long>(r.shed_dequeue),
               static_cast<unsigned long long>(r.shed_codel));
    const std::string base = std::string("bench.fault.e4e.") + (controlled ? "on" : "off");
    metrics::gauge(base + ".capacity_per_s").set(r.capacity);
    metrics::gauge(base + ".goodput_per_s").set(r.goodput);
    metrics::gauge(base + ".success_rate")
        .set(r.offered > 0 ? static_cast<double>(r.successes) / r.offered : 0.0);
    metrics::gauge(base + ".sojourn_p95_s").set(r.sojourn_p95);
    metrics::gauge(base + ".shed_admission").set(static_cast<double>(r.shed_admission));
    metrics::gauge(base + ".shed_dequeue").set(static_cast<double>(r.shed_dequeue));
    metrics::gauge(base + ".shed_codel").set(static_cast<double>(r.shed_codel));
  }
  {
    const auto& off = overload_results[0];
    const auto& on = overload_results[1];
    const double ratio = off.goodput > 0 ? on.goodput / off.goodput
                                         : (on.goodput > 0 ? 999.0 : 0.0);
    metrics::gauge("bench.fault.e4e.goodput_ratio").set(ratio);
    metrics::gauge("bench.fault.e4e.codel_target_s").set(kCodelTargetS);
    metrics::gauge("bench.fault.e4e.deadline_s").set(kOverloadDeadlineS);
    bench::row("");
    bench::row("overload control lifted goodput %.1fx at 3x load; controlled sojourn p95", ratio);
    bench::row("  %.0fms vs CoDel target %.0fms (acceptance band: target +-50%%)",
               on.sojourn_p95 * 1e3, kCodelTargetS * 1e3);
    bench::row("expected shape: goodput ratio >= 2x (the uncontrolled queue computes ghost");
    bench::row("  work for callers who already gave up); sojourn p95 within the CoDel band");
  }

  bench::banner("E4f", "durable long jobs: crash-kill at 50% done, journal recovery on/off");
  bench::row("%12s | %10s %10s %10s %10s %8s", "durability", "complete", "wasted",
             "makespan", "recovered", "resumed");
  const std::int64_t durable_work = opts.quick ? 400 : 800;
  const int durable_jobs = kConcurrency;
  DurableCaseResult durable_results[2];
  for (const bool recovery : {false, true}) {
    const auto r = run_durable_case(recovery, durable_work, durable_jobs);
    durable_results[recovery ? 1 : 0] = r;
    bench::row("%12s | %9.0f%% %9.0f%% %8.0fms %10llu %8llu", recovery ? "on" : "off",
               100.0 * r.completion_rate, 100.0 * r.wasted_ratio, r.makespan * 1e3,
               static_cast<unsigned long long>(r.recovered),
               static_cast<unsigned long long>(r.resumed));
    const std::string base = std::string("bench.fault.e4f.") + (recovery ? "on" : "off");
    metrics::gauge(base + ".completion_rate").set(r.completion_rate);
    metrics::gauge(base + ".wasted_ratio").set(r.wasted_ratio);
    metrics::gauge(base + ".makespan_s").set(r.makespan);
    metrics::gauge(base + ".recovered").set(static_cast<double>(r.recovered));
    metrics::gauge(base + ".resumed").set(static_cast<double>(r.resumed));
  }
  metrics::gauge("bench.fault.e4f.work_mflop").set(static_cast<double>(durable_work));
  metrics::gauge("bench.fault.e4f.jobs").set(durable_jobs);
  bench::row("");
  bench::row("expected shape: both modes complete 100%% (retries resubmit when the journal");
  bench::row("  is off), but recovery-off recomputes the whole pre-crash half (wasted ~50%%)");
  bench::row("  while recovery-on loses only the post-checkpoint tail (wasted ~<5%%)");

  bench::banner("E4g", "checkpoint replication: owner crash-killed, replica failover vs restart");
  bench::row("%12s | %9s %10s %8s %9s %7s", "replication", "complete", "makespan",
             "journal", "failover", "frames");
  const std::int64_t repl_work = opts.quick ? 400 : 800;
  const int repl_jobs = kConcurrency;
  ReplicationCaseResult repl_results[2];
  for (const bool replication : {false, true}) {
    const auto r = run_replication_case(replication, repl_work, repl_jobs);
    repl_results[replication ? 1 : 0] = r;
    bench::row("%12s | %8.0f%% %8.0fms %8llu %9llu %7llu", replication ? "on" : "off",
               100.0 * r.completion_rate, r.makespan * 1e3,
               static_cast<unsigned long long>(r.recovered),
               static_cast<unsigned long long>(r.failover_resumes),
               static_cast<unsigned long long>(r.frames));
    const std::string base = std::string("bench.fault.e4g.") + (replication ? "on" : "off");
    metrics::gauge(base + ".completion_rate").set(r.completion_rate);
    metrics::gauge(base + ".makespan_s").set(r.makespan);
    metrics::gauge(base + ".recovered").set(static_cast<double>(r.recovered));
    metrics::gauge(base + ".failover_resumes").set(static_cast<double>(r.failover_resumes));
  }
  {
    const auto& on = repl_results[1];
    const double ratio = on.wire_bytes > 0
                             ? static_cast<double>(on.raw_bytes) /
                                   static_cast<double>(on.wire_bytes)
                             : 0.0;
    metrics::gauge("bench.fault.e4g.ckpt_frames").set(static_cast<double>(on.frames));
    metrics::gauge("bench.fault.e4g.ckpt_raw_bytes").set(static_cast<double>(on.raw_bytes));
    metrics::gauge("bench.fault.e4g.ckpt_wire_bytes").set(static_cast<double>(on.wire_bytes));
    metrics::gauge("bench.fault.e4g.ckpt_compression_ratio").set(ratio);
    bench::row("");
    bench::row("replicated %llu frames: %.1f KB raw snapshots -> %.1f KB on the wire"
               " (%.1fx)",
               static_cast<unsigned long long>(on.frames), on.raw_bytes / 1024.0,
               on.wire_bytes / 1024.0, ratio);
    bench::row("expected shape: both modes complete 100%%; replication-off pays the");
    bench::row("  restart dark window while replication-on rides the replica with no");
    bench::row("  restart at all; delta/RLE frames cut wire bytes >= 3x vs raw");
  }
  metrics::gauge("bench.fault.e4g.work_mflop").set(static_cast<double>(repl_work));
  metrics::gauge("bench.fault.e4g.jobs").set(repl_jobs);

  bench::banner("E4h", "memory pressure: byte-accounted admission + spill at 3x oversubscription");
  bench::row("%12s | %9s %10s %10s %8s %6s %8s", "governed", "complete", "makespan",
             "spilled", "reloads", "shed", "peak<=B");
  const int mem_jobs = opts.quick ? 12 : 24;
  for (const bool governed : {false, true}) {
    const auto r = run_mempressure_case(governed, mem_jobs);
    bench::row("%12s | %8.0f%% %8.0fms %8.0fKB %8llu %6llu %8s",
               governed ? "on" : "off", 100.0 * r.completion_rate, r.makespan * 1e3,
               static_cast<double>(r.spilled_bytes) / 1024.0,
               static_cast<unsigned long long>(r.spill_reloads),
               static_cast<unsigned long long>(r.shed),
               r.peak_within_budget >= 1.0 ? "yes" : "NO");
    const std::string base = std::string("bench.fault.e4h.") + (governed ? "on" : "off");
    metrics::gauge(base + ".completion_rate").set(r.completion_rate);
    metrics::gauge(base + ".makespan_s").set(r.makespan);
    metrics::gauge(base + ".spilled_bytes").set(static_cast<double>(r.spilled_bytes));
    metrics::gauge(base + ".spill_reloads").set(static_cast<double>(r.spill_reloads));
    metrics::gauge(base + ".shed").set(static_cast<double>(r.shed));
    metrics::gauge(base + ".peak_bytes").set(static_cast<double>(r.peak_bytes));
    metrics::gauge(base + ".peak_within_budget").set(r.peak_within_budget);
  }
  metrics::gauge("bench.fault.e4h.budget_bytes").set(256.0 * 1024.0);
  metrics::gauge("bench.fault.e4h.jobs").set(mem_jobs);
  bench::row("");
  bench::row("expected shape: governed completion matches the ungoverned baseline while");
  bench::row("  the accounted high-water mark stays within the 256 KB budget; spill absorbs");
  bench::row("  the queued payloads (spilled > 0, reloads > 0) and the remainder sheds");
  bench::row("  retryably instead of growing the heap");

  metrics::gauge("bench.fault.jobs").set(g_jobs);
  metrics::gauge("bench.fault.concurrency").set(kConcurrency);
  metrics::gauge("bench.fault.deadline_s").set(kDeadlineS);

  // Machine-readable baseline for regression diffing (see EXPERIMENTS.md):
  // the full registry dump — bench.fault.* result gauges plus the client/
  // agent/server counters and span.* histograms the farm accumulated.
  const std::string json_path = opts.json_path.empty() ? "BENCH_fault.json" : opts.json_path;
  if (bench::write_metrics_json(json_path, "bench_fault", opts.quick)) {
    bench::row("");
    bench::row("baseline written to %s", json_path.c_str());
  }
  return 0;
}
