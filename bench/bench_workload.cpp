// E6 (Figure C): workload-report threshold ablation.
//
// NetSolve servers report workload periodically but suppress reports whose
// change since the last transmission is below a threshold — trading agent
// traffic against scheduling accuracy. Two servers serve a stream of jobs;
// server B carries a background load oscillating between 0 and 4 jobs with
// a ~0.4 s period. With fresh reports the agent routes around B's busy
// phases; with stale reports it cannot.
//
// Reported per threshold: workload reports received by the agent (traffic)
// and the mean job completion time (quality). Expected shape: traffic drops
// sharply with the threshold while mean job time degrades, approaching the
// random-half split at very high thresholds.
#include <atomic>

#include "bench/harness.hpp"

using namespace ns;
using dsl::DataObject;

namespace {

constexpr int kJobs = 50;
constexpr double kPeriod = 0.4;  // background oscillation period, seconds

struct CaseResult {
  std::uint64_t reports = 0;
  double mean_job = 0;
  int on_loaded_server = 0;
};

CaseResult run_case(double threshold) {
  testkit::ClusterConfig config;
  config.servers = testkit::uniform_pool(2, /*workers=*/1);
  for (auto& s : config.servers) {
    s.slowdown_mode = server::SlowdownMode::kSleep;
    s.report_period_s = 0.02;
    s.report_threshold = threshold;
  }
  config.rating_base = 1000.0;
  auto cluster = testkit::TestCluster::start(std::move(config));
  if (!cluster.ok()) {
    std::fprintf(stderr, "cluster failed: %s\n", cluster.error().to_string().c_str());
    std::exit(1);
  }
  auto client = cluster.value()->make_client();

  // Oscillating background load on server 1.
  std::atomic<bool> stop{false};
  std::thread oscillator([&cluster, &stop] {
    bool high = false;
    while (!stop.load()) {
      cluster.value()->server(1).set_background_load(high ? 4.0 : 0.0);
      high = !high;
      sleep_seconds(kPeriod / 2);
    }
  });

  const auto reports_before = cluster.value()->agent().stats().workload_reports;
  CaseResult result;
  std::mutex mu;
  auto farm = bench::run_farm(kJobs, /*concurrency=*/2, [&](int) {
    client::CallStats stats;
    auto out = client.netsl("simwork", {DataObject(std::int64_t{30})}, &stats);
    if (out.ok() && stats.server_name == cluster.value()->server(1).name()) {
      std::lock_guard<std::mutex> lock(mu);
      ++result.on_loaded_server;
    }
    return out.ok();
  });
  stop.store(true);
  oscillator.join();

  result.reports = cluster.value()->agent().stats().workload_reports - reports_before;
  result.mean_job = bench::summarize(farm.job_seconds).mean;
  return result;
}

}  // namespace

int main() {
  bench::banner("E6 / Figure C",
                "workload-report threshold: agent traffic vs scheduling quality");
  bench::row("(server B background load oscillates 0 <-> 4 jobs every %.1fs)", kPeriod / 2);
  bench::row("");
  bench::row("%10s %14s %12s %18s", "threshold", "reports_rcvd", "mean_job",
             "jobs_on_server_B");
  for (const double threshold : {0.0, 0.5, 1.0, 2.0, 8.0}) {
    const auto r = run_case(threshold);
    bench::row("%10.1f %14llu %10.0fms %18d", threshold,
               static_cast<unsigned long long>(r.reports), r.mean_job * 1e3,
               r.on_loaded_server);
  }
  bench::row("");
  bench::row("shape check: reports fall sharply with threshold; mean job time rises");
  bench::row("  as the agent acts on staler load data (routing into B's busy phase)");
  return 0;
}
