// Shared plumbing for the experiment harnesses (bench_* binaries that
// regenerate the paper-shaped tables and figures; see EXPERIMENTS.md).
//
// Each harness prints a self-describing header, the parameter values, and
// the measured rows in a fixed-width table so runs can be diffed and pasted
// into EXPERIMENTS.md directly.
#pragma once

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "testkit/cluster.hpp"

namespace ns::bench {

/// Common harness flags, shared by the bench_* binaries that accept them:
///   --quick         shrink the workload so the run fits a CI smoke budget
///   --json <path>   after the run, dump the process metrics registry as
///                   JSON to <path> (the machine-readable BENCH_*.json
///                   baseline is then harness-produced, not hand-rolled)
struct Options {
  bool quick = false;
  std::string json_path;

  static Options parse(int argc, char** argv) {
    Options opts;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--quick") {
        opts.quick = true;
      } else if (arg == "--json" && i + 1 < argc) {
        opts.json_path = argv[++i];
      } else if (arg.rfind("--json=", 0) == 0) {
        opts.json_path = arg.substr(7);
      } else {
        std::fprintf(stderr, "unknown flag %s (known: --quick, --json <path>)\n", arg.c_str());
        std::exit(2);
      }
    }
    return opts;
  }
};

/// Write `{"experiment": ..., "quick": ..., "metrics": <registry dump>}` to
/// `path`. The dump carries everything the run produced: the bench.* result
/// gauges plus the client/agent/server counters and span histograms that
/// accumulated in this process while the in-process clusters ran.
inline bool write_metrics_json(const std::string& path, const std::string& experiment,
                               bool quick) {
  FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) return false;
  const std::string dump = metrics::Registry::instance().snapshot().to_json();
  std::fprintf(out, "{\"experiment\": \"%s\", \"quick\": %s, \"metrics\": %s}\n",
               experiment.c_str(), quick ? "true" : "false", dump.c_str());
  std::fclose(out);
  return true;
}

inline void banner(const char* experiment_id, const char* title) {
  std::printf("==============================================================\n");
  std::printf("%s: %s\n", experiment_id, title);
  std::printf("==============================================================\n");
}

inline void row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
  std::fflush(stdout);
}

/// Basic statistics over a sample set.
struct Summary {
  double mean = 0, min = 0, max = 0, stddev = 0, p95 = 0;
  std::size_t count = 0;
};

inline Summary summarize(const std::vector<double>& xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  s.min = xs[0];
  s.max = xs[0];
  double sum = 0;
  for (const double x : xs) {
    sum += x;
    if (x < s.min) s.min = x;
    if (x > s.max) s.max = x;
  }
  s.mean = sum / static_cast<double>(xs.size());
  double var = 0;
  for (const double x : xs) var += (x - s.mean) * (x - s.mean);
  s.stddev = xs.size() > 1 ? std::sqrt(var / static_cast<double>(xs.size() - 1)) : 0.0;
  // Nearest-rank p95 over a sorted copy.
  std::vector<double> sorted = xs;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t rank =
      std::min(sorted.size() - 1,
               static_cast<std::size_t>(std::ceil(0.95 * static_cast<double>(sorted.size()))) -
                   (sorted.empty() ? 0 : 1));
  s.p95 = sorted[rank];
  return s;
}

/// Run `count` jobs through `submit` with at most `concurrency` in flight,
/// using one worker thread per slot; returns per-job wall times (seconds)
/// in completion order and the overall makespan.
struct FarmResult {
  std::vector<double> job_seconds;
  double makespan = 0;
  int failures = 0;
};

template <typename SubmitFn>
FarmResult run_farm(int count, int concurrency, SubmitFn&& submit) {
  FarmResult result;
  std::mutex mu;
  std::atomic<int> next{0};
  const Stopwatch total;
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(concurrency));
  for (int w = 0; w < concurrency; ++w) {
    workers.emplace_back([&] {
      while (true) {
        const int job = next.fetch_add(1);
        if (job >= count) return;
        const Stopwatch watch;
        const bool ok = submit(job);
        const double elapsed = watch.elapsed();
        std::lock_guard<std::mutex> lock(mu);
        if (ok) {
          result.job_seconds.push_back(elapsed);
        } else {
          ++result.failures;
        }
      }
    });
  }
  for (auto& t : workers) t.join();
  result.makespan = total.elapsed();
  return result;
}

}  // namespace ns::bench
